"""The in-sim flight recorder: passivity, bounded capture, harvest."""

import numpy as np
import pytest

from repro.core.attack import PulseTrain
from repro.obs.recorder import (
    FlightRecorder,
    Series,
    SeriesRecorder,
    contested_links,
)
from repro.sim.topology import DumbbellConfig, build_dumbbell
from repro.sim.trace import QueueSampler
from repro.util.units import mbps, ms

HORIZON = 4.0


def attacked_net(recorder=None, sampler_interval=None):
    """A short attacked dumbbell, optionally taped and/or sampled."""
    config = DumbbellConfig(n_flows=3, seed=23)
    net = build_dumbbell(config)
    train = PulseTrain.from_gamma(
        gamma=0.5, rate_bps=mbps(30), extent=ms(100),
        bottleneck_bps=config.bottleneck_rate_bps, n_pulses=10,
    )
    net.add_attack(train, start_time=1.0)
    sampler = None
    if sampler_interval is not None:
        sampler = QueueSampler(net.bottleneck, interval=sampler_interval,
                               horizon=HORIZON)
        sampler.start()
    if recorder is not None:
        recorder.attach(net, horizon=HORIZON)
    net.start_flows()
    for source in net.attack_sources:
        source.start()
    net.run(until=HORIZON)
    return net, sampler


class TestSeriesRecorder:
    def test_appends_rows_in_order(self):
        ring = SeriesRecorder("s", ("time", "value"), capacity=8)
        ring.append(0.0, 1.0)
        ring.append(1.0, 2.0)
        series = ring.as_series()
        assert series.n_rows == 2
        assert series.evicted == 0
        assert np.array_equal(series.data, [[0.0, 1.0], [1.0, 2.0]])

    def test_full_ring_evicts_oldest(self):
        ring = SeriesRecorder("s", ("time",), capacity=4)
        for i in range(6):
            ring.append(float(i))
        assert len(ring) == 4
        assert ring.evicted == 2
        series = ring.as_series()
        assert series.evicted == 2
        assert list(series.column("time")) == [2.0, 3.0, 4.0, 5.0]

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            SeriesRecorder("s", ("time",), capacity=0)

    def test_empty_ring_yields_zero_row_series(self):
        series = SeriesRecorder("s", ("time", "a", "b")).as_series()
        assert series.n_rows == 0
        assert series.data.shape == (0, 3)


class TestSeries:
    def test_column_by_label(self):
        series = Series("s", ("time", "value"),
                        np.array([[0.0, 5.0], [1.0, 6.0]]))
        assert list(series.column("value")) == [5.0, 6.0]

    def test_data_coerced_to_float64(self):
        series = Series("s", ("a",), np.array([[1], [2]], dtype=np.int64))
        assert series.data.dtype == np.float64


class TestPassivity:
    def test_state_digest_bit_identical_with_recorder(self):
        # The acceptance bar: attaching the recorder must not change a
        # single simulated bit -- same digests, same goodput.
        bare, _ = attacked_net()
        recorder = FlightRecorder()
        taped, _ = attacked_net(recorder)
        assert taped.state_digest() == bare.state_digest()
        assert (taped.aggregate_goodput_bytes()
                == bare.aggregate_goodput_bytes())
        series = {s.name: s for s in recorder.harvest()}
        assert series["tcp.cwnd"].n_rows > 0
        assert series["link.bottleneck.rate"].column("total_bytes").sum() > 0
        assert series["link.bottleneck.queue"].n_rows > 0
        assert series["engine.progress"].n_rows == 1

    def test_recovery_series_captures_pulse_losses(self):
        recorder = FlightRecorder()
        attacked_net(recorder)
        recovery = {s.name: s for s in recorder.harvest()}["tcp.recovery"]
        assert recovery.n_rows > 0  # pulses force recoveries
        assert set(recovery.column("kind")) <= {0.0, 1.0}
        assert (recovery.column("rto") > 0).all()

    def test_attach_twice_rejected(self):
        recorder = FlightRecorder()
        net, _ = attacked_net(recorder)
        with pytest.raises(RuntimeError, match="only once"):
            recorder.attach(net, horizon=HORIZON)

    def test_harvest_sorted_by_name(self):
        recorder = FlightRecorder()
        attacked_net(recorder)
        names = [s.name for s in recorder.harvest()]
        assert names == sorted(names)

    def test_ring_capacity_bounds_capture(self):
        recorder = FlightRecorder(capacity=16)
        attacked_net(recorder)
        cwnd = {s.name: s for s in recorder.harvest()}["tcp.cwnd"]
        assert cwnd.n_rows == 16
        assert cwnd.evicted > 0


class TestQueueSamplerTap:
    def test_harvest_matches_sampler_exactly(self):
        # The sampler is scenario-owned (it schedules its own ticks);
        # the recorder only copies its samples -- float for float.
        recorder = FlightRecorder()
        config = DumbbellConfig(n_flows=3, seed=23)
        net = build_dumbbell(config)
        sampler = QueueSampler(net.bottleneck, interval=0.05,
                               horizon=HORIZON)
        sampler.start()
        recorder.attach(net, horizon=HORIZON)
        recorder.tap_queue_sampler(sampler, "link.bottleneck.sampled")
        net.start_flows()
        net.run(until=HORIZON)
        series = {s.name: s
                  for s in recorder.harvest()}["link.bottleneck.sampled"]
        times, qbytes, qpkts = sampler.as_arrays()
        assert series.n_rows == len(times) > 0
        assert np.array_equal(series.column("time"), times)
        assert np.array_equal(series.column("queue_bytes"), qbytes)
        assert np.array_equal(series.column("queue_packets"), qpkts)


class TestContestedLinks:
    def test_dumbbell_labels(self):
        net = build_dumbbell(DumbbellConfig(n_flows=2, seed=1))
        labels = [label for label, _ in contested_links(net)]
        assert labels == ["bottleneck", "bottleneck_reverse"]

    def test_testbed_labels(self):
        from repro.testbed.dummynet import TestbedConfig, build_testbed

        net = build_testbed(TestbedConfig(n_flows=2, seed=1))
        labels = [label for label, _ in contested_links(net)]
        assert labels == ["pipe", "pipe_reverse"]


class TestExecutorIntegration:
    def test_execute_cell_result_identical_with_recorder(self):
        from repro.runner import Cell, PlatformSpec, execute_cell

        cell = Cell(platform=PlatformSpec(kind="dumbbell", n_flows=2,
                                          seed=7),
                    warmup=1.0, window=2.0)
        plain = execute_cell(cell)
        recorder = FlightRecorder()
        taped = execute_cell(cell, recorder=recorder)
        assert taped == plain
        assert any(s.n_rows for s in recorder.harvest())

    def test_group_results_identical_with_record(self):
        from repro.runner import Cell, PlatformSpec
        from repro.runner.cells import execute_cell_group

        spec = PlatformSpec(kind="dumbbell", n_flows=2, seed=7)
        cells = [
            Cell(platform=spec, warmup=1.0, window=2.0),
            Cell(platform=spec, warmup=1.0, window=2.0,
                 train=PulseTrain.from_gamma(
                     gamma=0.5, rate_bps=mbps(30), extent=ms(100),
                     bottleneck_bps=mbps(15), n_pulses=3)),
        ]
        plain = execute_cell_group(cells)
        taped = execute_cell_group(cells, record=True)
        assert taped.results == plain.results
        assert plain.series == ()
        assert len(taped.series) == 2
        for captured in taped.series:
            assert captured is not None
            assert any(s.n_rows for s in captured)
