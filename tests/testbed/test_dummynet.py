"""Dummynet pipe emulation and the Fig. 11 topology."""

import pytest

from repro.core.attack import PulseTrain
from repro.sim.queues import DropTailQueue, REDQueue
from repro.testbed.dummynet import (
    DummynetPipe,
    TestbedConfig,
    build_testbed,
)
from repro.util.errors import ConfigurationError, ValidationError
from repro.util.units import mbps, ms


class TestDummynetPipe:
    def test_rule_of_thumb_buffer(self):
        pipe = DummynetPipe.rule_of_thumb(mbps(10), rtt=0.3)
        # B = RTT x R_bottle = 0.3 * 10e6 / 8 bytes.
        assert pipe.queue_bytes == pytest.approx(375_000.0)
        assert pipe.delay == pytest.approx(0.15)

    def test_red_queue_section_4_2_parameters(self):
        pipe = DummynetPipe.rule_of_thumb(mbps(10), rtt=0.3)
        queue = pipe.red_queue()
        assert isinstance(queue, REDQueue)
        assert queue.min_th == pytest.approx(0.2 * 375_000)
        assert queue.max_th == pytest.approx(0.8 * 375_000)
        assert queue.max_p == 0.1
        assert queue.w_q == 0.002
        assert queue.gentle
        assert queue.byte_mode

    def test_droptail_same_capacity(self):
        pipe = DummynetPipe.rule_of_thumb(mbps(10), rtt=0.3)
        queue = pipe.droptail_queue()
        assert isinstance(queue, DropTailQueue)
        assert queue.capacity_bytes == pipe.queue_bytes

    def test_validation(self):
        with pytest.raises(ValidationError):
            DummynetPipe(bandwidth_bps=0.0, delay=0.1, queue_bytes=1000.0)


class TestTestbedConfig:
    def test_defaults_match_section_4_2(self):
        config = TestbedConfig()
        assert config.n_flows == 10
        assert config.pipe.bandwidth_bps == mbps(10)
        assert config.tcp.min_rto == pytest.approx(0.2)  # Linux RTO_min
        assert config.tcp.delayed_ack == 2

    def test_rtt_includes_pipe_and_lan(self):
        config = TestbedConfig()
        assert config.rtt() == pytest.approx(2 * (0.15 + 2 * ms(0.5)))

    def test_zero_flows_rejected(self):
        with pytest.raises(ConfigurationError):
            TestbedConfig(n_flows=0)


class TestTestbedNetwork:
    def test_build_and_run(self):
        net = build_testbed(TestbedConfig(n_flows=3))
        net.start_flows(stagger=0.0)
        net.run(until=5.0)
        assert net.aggregate_goodput_bytes() > 0

    def test_red_vs_droptail_selectable(self):
        red = build_testbed(TestbedConfig(use_red=True))
        droptail = build_testbed(TestbedConfig(use_red=False))
        assert isinstance(red.pipe_queue, REDQueue)
        assert isinstance(droptail.pipe_queue, DropTailQueue)

    def test_flows_saturate_pipe_in_steady_state(self):
        net = build_testbed(TestbedConfig(n_flows=10))
        net.start_flows()
        net.run(until=15.0)
        before = net.aggregate_goodput_bytes()
        net.run(until=30.0)
        goodput_bps = (net.aggregate_goodput_bytes() - before) * 8 / 15.0
        assert goodput_bps > 0.8 * mbps(10)

    def test_attack_reduces_goodput(self):
        def run(attacked):
            net = build_testbed(TestbedConfig(n_flows=5, seed=3))
            net.start_flows()
            net.run(until=8.0)
            before = net.aggregate_goodput_bytes()
            if attacked:
                train = PulseTrain.uniform(ms(150), mbps(20), ms(450),
                                           n_pulses=30)
                net.add_attack(train, start_time=8.0).start()
            net.run(until=20.0)
            return net.aggregate_goodput_bytes() - before

        assert run(True) < 0.7 * run(False)

    def test_flow_rtts_uniform(self):
        net = build_testbed(TestbedConfig(n_flows=4))
        rtts = net.flow_rtts()
        assert len(rtts) == 4
        assert all(rtt == rtts[0] for rtt in rtts)

    def test_attack_reaches_victim_side(self):
        net = build_testbed(TestbedConfig(n_flows=2))
        seen = []
        net.pipe_link.monitors.append(
            lambda pkt, now, ok: seen.append(pkt) if pkt.is_attack else None
        )
        train = PulseTrain.uniform(ms(50), mbps(20), 0.0, n_pulses=1)
        net.add_attack(train).start()
        net.run(until=1.0)
        assert seen
        assert net.victim_node.undeliverable == 0
