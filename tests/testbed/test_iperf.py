"""Iperf-like interval reporting."""

import pytest

from repro.testbed.dummynet import TestbedConfig, build_testbed
from repro.testbed.iperf import IperfClient, IperfReport


class TestIperfReport:
    def test_format_line(self):
        report = IperfReport(start=0.0, end=1.0, transferred_bytes=1_250_000,
                             bandwidth_bps=10e6)
        line = report.format_line()
        assert "1.25 MBytes" in line
        assert "10.00 Mbits/sec" in line

    def test_fields(self):
        report = IperfReport(2.0, 3.0, 500.0, 4000.0)
        assert report.end - report.start == 1.0


class TestIperfClient:
    def test_interval_reports_accumulate(self):
        net = build_testbed(TestbedConfig(n_flows=2))
        client = IperfClient(net.senders[0], interval=1.0)
        client.start()
        net.senders[1].start()
        net.run(until=10.0)
        assert len(client.reports) >= 9
        for report in client.reports:
            assert report.end - report.start == pytest.approx(1.0)

    def test_summary_totals_intervals(self):
        net = build_testbed(TestbedConfig(n_flows=2))
        client = IperfClient(net.senders[0], interval=1.0)
        client.start()
        net.senders[1].start()
        net.run(until=8.0)
        summary = client.summary()
        assert summary.transferred_bytes == pytest.approx(
            sum(r.transferred_bytes for r in client.reports)
        )
        assert summary.end > summary.start

    def test_bandwidth_consistent_with_goodput(self):
        net = build_testbed(TestbedConfig(n_flows=1))
        client = IperfClient(net.senders[0], interval=1.0)
        client.start()
        net.run(until=10.0)
        total = client.summary().transferred_bytes
        # Goodput at the last tick may slightly exceed the reported total
        # (data delivered after the final interval boundary).
        assert total <= net.senders[0].goodput_bytes()
        assert total > 0

    def test_empty_summary(self):
        net = build_testbed(TestbedConfig(n_flows=1))
        client = IperfClient(net.senders[0])
        summary = client.summary()
        assert summary.transferred_bytes == 0.0
        assert summary.bandwidth_bps == 0.0

    def test_start_idempotent(self):
        net = build_testbed(TestbedConfig(n_flows=1))
        client = IperfClient(net.senders[0], interval=1.0)
        client.start()
        client.start()
        net.run(until=3.0)
        # One reporting chain only: one report per second.
        assert len(client.reports) <= 3
