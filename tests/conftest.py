"""Shared fixtures for the repro test suite."""

import random

import pytest

from repro.sim.engine import Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh event engine."""
    return Simulator()


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG for queue disciplines."""
    return random.Random(1234)


@pytest.fixture(autouse=True)
def _reset_default_runner():
    """Keep the process-wide default runner from leaking between tests."""
    yield
    from repro.runner import set_default_runner

    set_default_runner(None)
