"""Shared fixtures for the repro test suite."""

import random

import pytest

from repro.sim.engine import Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh event engine."""
    return Simulator()


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG for queue disciplines."""
    return random.Random(1234)
