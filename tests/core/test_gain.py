"""Attack gain and risk preferences (Section 3, Fig. 4)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.gain import (
    RiskPreference,
    attack_gain,
    attack_gain_curve,
    classify_kappa,
    risk_curve,
    risk_weight,
)
from repro.util.errors import ValidationError


class TestRiskWeight:
    def test_formula(self):
        assert risk_weight(0.5, 2.0) == pytest.approx(0.25)

    def test_monotone_decreasing_in_gamma(self):
        weights = [risk_weight(g, 2.0) for g in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert all(a > b for a, b in zip(weights, weights[1:]))

    def test_risk_averse_below_neutral(self):
        # Fig. 4: the kappa > 1 curve lies below the linear one.
        for gamma in (0.2, 0.5, 0.8):
            assert risk_weight(gamma, 3.0) < risk_weight(gamma, 1.0)

    def test_risk_loving_above_neutral(self):
        for gamma in (0.2, 0.5, 0.8):
            assert risk_weight(gamma, 0.5) > risk_weight(gamma, 1.0)

    def test_limits(self):
        # kappa -> 0: indifferent to risk (weight -> 1).
        assert risk_weight(0.9, 1e-9) == pytest.approx(1.0)
        # kappa -> inf: paralyzed by risk (weight -> 0).
        assert risk_weight(0.5, 200.0) == pytest.approx(0.0, abs=1e-9)


class TestClassifyKappa:
    def test_classes(self):
        assert classify_kappa(0.5) is RiskPreference.RISK_LOVING
        assert classify_kappa(1.0) is RiskPreference.RISK_NEUTRAL
        assert classify_kappa(2.0) is RiskPreference.RISK_AVERSE

    def test_nonpositive_rejected(self):
        with pytest.raises(ValidationError):
            classify_kappa(0.0)


class TestAttackGain:
    def test_eq5(self):
        # (1 - 0.2/0.5) * (1 - 0.5)^1 = 0.6 * 0.5
        assert attack_gain(0.5, 0.2, 1.0) == pytest.approx(0.3)

    def test_negative_when_attack_too_weak(self):
        assert attack_gain(0.1, 0.2, 1.0) < 0

    def test_zero_at_gamma_equal_cpsi(self):
        assert attack_gain(0.2, 0.2, 1.0) == pytest.approx(0.0)

    def test_vanishes_as_gamma_approaches_one(self):
        assert attack_gain(0.999999, 0.2, 1.0) == pytest.approx(0.0, abs=1e-5)

    @given(gamma=st.floats(0.01, 0.99), c=st.floats(0.01, 0.99),
           kappa=st.floats(0.1, 10.0))
    def test_bounded_above_by_risk_weight(self, gamma, c, kappa):
        assert attack_gain(gamma, c, kappa) <= risk_weight(gamma, kappa) + 1e-12

    def test_curve_matches_scalar(self):
        gammas = np.linspace(0.1, 0.9, 9)
        curve = attack_gain_curve(gammas, 0.2, 2.0)
        for gamma, value in zip(gammas, curve):
            assert value == pytest.approx(attack_gain(float(gamma), 0.2, 2.0))

    def test_curve_rejects_out_of_domain(self):
        with pytest.raises(ValueError):
            attack_gain_curve(np.array([0.0, 0.5]), 0.2, 1.0)
        with pytest.raises(ValueError):
            attack_gain_curve(np.array([0.5, 1.0]), 0.2, 1.0)


class TestRiskCurve:
    def test_endpoints(self):
        values = risk_curve(np.array([0.0, 1.0]), 2.0)
        assert values[0] == 1.0
        assert values[1] == 0.0

    def test_convexity_of_risk_averse(self):
        gammas = np.linspace(0, 1, 21)
        averse = risk_curve(gammas, 3.0)
        # convex: midpoint below chord
        assert averse[10] < (averse[0] + averse[20]) / 2

    def test_concavity_of_risk_loving(self):
        gammas = np.linspace(0, 1, 21)
        loving = risk_curve(gammas, 0.5)
        assert loving[10] > (loving[0] + loving[20]) / 2

    def test_neutral_is_linear(self):
        gammas = np.linspace(0, 1, 11)
        neutral = risk_curve(gammas, 1.0)
        assert np.allclose(neutral, 1.0 - gammas)

    def test_domain_enforced(self):
        with pytest.raises(ValueError):
            risk_curve(np.array([-0.1]), 1.0)
