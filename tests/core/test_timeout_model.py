"""The timeout-aware throughput extension (Section-5 future work)."""

import numpy as np
import pytest

from repro.core.timeout_model import (
    FlowRegime,
    extended_attack_throughput,
    extended_degradation,
    extended_gain,
    flow_regime,
    fr_packets_per_period,
    per_flow_predictions,
    to_packets_per_period,
)
from repro.core.throughput import VictimPopulation, converged_window
from repro.sim.tcp.params import AIMDParams
from repro.util.units import mbps, ms

STD = AIMDParams.standard_tcp()


def victims(rtts, d=2):
    return VictimPopulation(rtts=rtts, delayed_ack=d)


class TestFlowRegime:
    def test_large_window_fast_recovers(self):
        # b*W_c = 10 >= 4 dup-ACK budget.
        assert flow_regime(w_converged=20.0, decrease=0.5, period=0.4,
                           min_rto=1.0) is FlowRegime.FAST_RECOVERY

    def test_small_window_times_out(self):
        # b*W_c = 2 < 4: not enough dup ACKs for fast retransmit.
        assert flow_regime(w_converged=4.0, decrease=0.5, period=0.4,
                           min_rto=1.0) is FlowRegime.TIMEOUT

    def test_small_window_on_harmonic_locks(self):
        assert flow_regime(w_converged=4.0, decrease=0.5, period=0.5,
                           min_rto=1.0) is FlowRegime.LOCKED

    def test_large_window_on_harmonic_still_fr(self):
        """Shrew lock-in needs the timeout path; FR flows are immune."""
        assert flow_regime(w_converged=20.0, decrease=0.5, period=0.5,
                           min_rto=1.0) is FlowRegime.FAST_RECOVERY

    def test_boundary_exactly_four(self):
        assert flow_regime(w_converged=8.0, decrease=0.5, period=0.4,
                           min_rto=1.0) is FlowRegime.FAST_RECOVERY


class TestTimeoutPeriodPackets:
    def test_no_time_left_gives_one_packet(self):
        pop = victims([0.2])
        assert to_packets_per_period(pop, period=0.2, rtt=0.2,
                                     min_rto=1.0) == 1.0

    def test_more_remaining_time_more_packets(self):
        pop = victims([0.2])
        short = to_packets_per_period(pop, period=1.5, rtt=0.2, min_rto=1.0)
        long = to_packets_per_period(pop, period=3.0, rtt=0.2, min_rto=1.0)
        assert long > short

    def test_far_below_fr_throughput(self):
        """A timed-out flow delivers much less than the FR sawtooth."""
        pop = victims([0.3])
        period = 2.0
        to = to_packets_per_period(pop, period, 0.3, min_rto=1.0)
        fr = fr_packets_per_period(pop, period, 0.3)
        assert to < 0.5 * fr

    def test_rto_uses_rtt_floor(self):
        """When RTT exceeds minRTO, the idle time is the RTT itself."""
        pop = victims([0.5])
        fast_host = to_packets_per_period(pop, period=1.0, rtt=0.5,
                                          min_rto=0.2)
        slow_host = to_packets_per_period(pop, period=1.0, rtt=0.5,
                                          min_rto=1.0)
        assert fast_host >= slow_host


class TestPredictions:
    def test_mixed_population_regimes(self):
        pop = victims(np.linspace(0.02, 0.46, 15))
        period = 0.45  # short period: long-RTT flows get tiny windows
        predictions = per_flow_predictions(pop, period=period, min_rto=1.0,
                                           bottleneck_bps=mbps(15))
        regimes = {p.regime for p in predictions}
        assert FlowRegime.FAST_RECOVERY in regimes
        assert FlowRegime.TIMEOUT in regimes

    def test_fair_share_cap_applied(self):
        pop = victims([0.02])  # W_c huge: uncapped sawtooth would explode
        period = 2.0
        predictions = per_flow_predictions(pop, period=period, min_rto=1.0,
                                           bottleneck_bps=mbps(15))
        fair_share = period * 15e6 / (8 * 1500 * 1)
        assert predictions[0].packets_per_period == pytest.approx(fair_share)

    def test_w_converged_matches_eq1(self):
        pop = victims([0.1])
        predictions = per_flow_predictions(pop, period=1.0, min_rto=1.0,
                                           bottleneck_bps=mbps(15))
        assert predictions[0].w_converged == pytest.approx(
            converged_window(STD, 2, 1.0, 0.1)
        )

    def test_locked_flows_deliver_one_packet(self):
        pop = victims([0.46])
        predictions = per_flow_predictions(pop, period=1.0, min_rto=1.0,
                                           bottleneck_bps=mbps(15))
        assert predictions[0].regime is FlowRegime.LOCKED
        assert predictions[0].packets_per_period == 1.0


class TestExtendedDegradation:
    def test_bounded_in_unit_interval(self):
        pop = victims(np.linspace(0.02, 0.46, 15))
        for period in (0.3, 0.7, 1.3, 2.4):
            value = extended_degradation(pop, period=period,
                                         bottleneck_bps=mbps(15),
                                         min_rto=1.0)
            assert 0.0 <= value < 1.0

    def test_harmonic_period_spikes_damage(self):
        """Shrew lock-in: damage at minRTO harmonics exceeds neighbours."""
        pop = victims(np.linspace(0.02, 0.46, 15))
        at_harmonic = extended_degradation(pop, period=1.0,
                                           bottleneck_bps=mbps(15),
                                           min_rto=1.0)
        off_harmonic = extended_degradation(pop, period=1.3,
                                            bottleneck_bps=mbps(15),
                                            min_rto=1.0)
        assert at_harmonic > off_harmonic

    def test_reduces_to_zero_for_giant_windows(self):
        """All flows FR with fair-share-capped sawtooths above their share:
        the extension predicts no degradation, like Prop. 2's clamp."""
        pop = victims([0.02, 0.03])
        value = extended_degradation(pop, period=5.0, bottleneck_bps=mbps(15),
                                     min_rto=1.0)
        assert value == pytest.approx(0.0, abs=1e-9)

    def test_throughput_requires_two_pulses(self):
        pop = victims([0.1])
        with pytest.raises(ValueError):
            extended_attack_throughput(pop, period=1.0, n_pulses=1,
                                       min_rto=1.0, bottleneck_bps=mbps(15))


class TestExtendedGain:
    def test_risk_discount_applied(self):
        pop = victims(np.linspace(0.02, 0.46, 15))
        low = extended_gain(pop, gamma=0.3, period=0.66,
                            bottleneck_bps=mbps(15), min_rto=1.0, kappa=1.0)
        discounted = extended_gain(pop, gamma=0.3, period=0.66,
                                   bottleneck_bps=mbps(15), min_rto=1.0,
                                   kappa=5.0)
        assert discounted < low

    def test_gamma_domain_enforced(self):
        pop = victims([0.1])
        with pytest.raises(ValueError):
            extended_gain(pop, gamma=1.0, period=1.0,
                          bottleneck_bps=mbps(15), min_rto=1.0)
