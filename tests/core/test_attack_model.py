"""The pulse-train attack model A(T_extent, R_attack, T_space, N)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.attack import PulseTrain
from repro.util.errors import ValidationError
from repro.util.units import mbps, ms


class TestConstruction:
    def test_uniform(self):
        train = PulseTrain.uniform(0.05, mbps(100), 1.95, n_pulses=30)
        assert train.n_pulses == 30
        assert train.is_uniform
        assert train.extent == 0.05
        assert train.space == 1.95
        assert train.period == 2.0

    def test_single_pulse_has_no_spacing(self):
        train = PulseTrain.uniform(0.1, mbps(10), 0.5, n_pulses=1)
        assert train.space == 0.0
        assert train.period == 0.1

    def test_flooding_is_one_continuous_pulse(self):
        train = PulseTrain.flooding(mbps(50), 30.0)
        assert train.is_flooding
        assert train.n_pulses == 1
        assert train.total_duration() == 30.0

    def test_zero_spacing_means_flooding(self):
        train = PulseTrain.uniform(0.1, mbps(10), 0.0, n_pulses=5)
        assert train.is_flooding

    def test_non_uniform_train(self):
        train = PulseTrain([0.1, 0.2], [mbps(10), mbps(20)], [0.5])
        assert not train.is_uniform
        with pytest.raises(ValidationError):
            _ = train.extent

    def test_length_mismatches_rejected(self):
        with pytest.raises(ValidationError):
            PulseTrain([0.1, 0.2], [mbps(10)], [0.5])
        with pytest.raises(ValidationError):
            PulseTrain([0.1, 0.2], [mbps(10), mbps(10)], [0.5, 0.5])

    def test_empty_train_rejected(self):
        with pytest.raises(ValidationError):
            PulseTrain([], [], [])

    def test_negative_values_rejected(self):
        with pytest.raises(ValidationError):
            PulseTrain.uniform(-0.1, mbps(10), 0.5, 2)
        with pytest.raises(ValidationError):
            PulseTrain.uniform(0.1, -1.0, 0.5, 2)
        with pytest.raises(ValidationError):
            PulseTrain.uniform(0.1, mbps(10), -0.5, 2)


class TestDerivedQuantities:
    def test_duty_cycle(self):
        train = PulseTrain.uniform(0.5, mbps(10), 1.5, 4)
        assert train.duty_cycle == pytest.approx(0.25)

    def test_mu_is_space_over_extent(self):
        train = PulseTrain.uniform(0.1, mbps(10), 0.3, 4)
        assert train.mu == pytest.approx(3.0)

    def test_mean_rate(self):
        train = PulseTrain.uniform(0.5, mbps(40), 1.5, 4)
        assert train.mean_rate_bps() == pytest.approx(mbps(10))

    def test_gamma_eq4(self):
        # gamma = R_attack T_extent / (R_bottle T_AIMD)
        train = PulseTrain.uniform(ms(100), mbps(30), ms(300), 4)
        assert train.gamma(mbps(15)) == pytest.approx(0.5)

    def test_c_attack(self):
        train = PulseTrain.uniform(ms(100), mbps(30), ms(300), 4)
        assert train.c_attack(mbps(15)) == pytest.approx(2.0)

    def test_gamma_equals_c_attack_over_one_plus_mu(self):
        # Eq. (7)
        train = PulseTrain.uniform(ms(100), mbps(30), ms(250), 4)
        gamma = train.gamma(mbps(15))
        assert gamma == pytest.approx(
            train.c_attack(mbps(15)) / (1.0 + train.mu)
        )

    def test_total_attack_bits(self):
        train = PulseTrain.uniform(0.1, mbps(10), 0.9, 5)
        assert train.total_attack_bits() == pytest.approx(5 * 1e6)


class TestTimeline:
    def test_pulse_intervals(self):
        train = PulseTrain.uniform(0.1, mbps(10), 0.4, 3)
        intervals = train.pulse_intervals(start=1.0)
        assert intervals == [
            (1.0, pytest.approx(1.1)),
            (pytest.approx(1.5), pytest.approx(1.6)),
            (pytest.approx(2.0), pytest.approx(2.1)),
        ]

    def test_total_duration(self):
        train = PulseTrain.uniform(0.1, mbps(10), 0.4, 3)
        assert train.total_duration() == pytest.approx(1.1)

    def test_non_uniform_intervals(self):
        train = PulseTrain([0.1, 0.2], [mbps(1), mbps(2)], [0.3])
        assert train.pulse_intervals() == [
            (0.0, pytest.approx(0.1)),
            (pytest.approx(0.4), pytest.approx(0.6)),
        ]


class TestFromGamma:
    def test_roundtrip(self):
        train = PulseTrain.from_gamma(
            gamma=0.4, rate_bps=mbps(30), extent=ms(100),
            bottleneck_bps=mbps(15), n_pulses=10,
        )
        assert train.gamma(mbps(15)) == pytest.approx(0.4)

    def test_unreachable_gamma_rejected(self):
        # gamma cannot exceed C_attack = 0.5 here.
        with pytest.raises(ValidationError, match="C_attack"):
            PulseTrain.from_gamma(
                gamma=0.6, rate_bps=mbps(7.5), extent=ms(100),
                bottleneck_bps=mbps(15), n_pulses=10,
            )

    def test_gamma_equal_to_c_attack_is_flooding(self):
        train = PulseTrain.from_gamma(
            gamma=0.5, rate_bps=mbps(7.5), extent=ms(100),
            bottleneck_bps=mbps(15), n_pulses=3,
        )
        assert train.is_flooding

    @given(
        gamma=st.floats(0.05, 0.95),
        rate=st.floats(16e6, 100e6),
        extent=st.floats(0.02, 0.3),
    )
    def test_gamma_roundtrip_property(self, gamma, rate, extent):
        train = PulseTrain.from_gamma(
            gamma=gamma, rate_bps=rate, extent=extent,
            bottleneck_bps=15e6, n_pulses=5,
        )
        assert train.gamma(15e6) == pytest.approx(gamma, rel=1e-9)

    def test_from_mu(self):
        train = PulseTrain.from_mu(mu=3.0, rate_bps=mbps(10),
                                   extent=0.1, n_pulses=4)
        assert train.space == pytest.approx(0.3)
        assert train.mu == pytest.approx(3.0)


class TestPeriodFromGamma:
    """period_from_gamma is the single source of truth for Eq. (4)."""

    def test_matches_the_built_train_period(self):
        kwargs = dict(gamma=0.5, rate_bps=mbps(30), extent=ms(100),
                      bottleneck_bps=mbps(15))
        period = PulseTrain.period_from_gamma(**kwargs)
        train = PulseTrain.from_gamma(n_pulses=4, **kwargs)
        assert train.period == pytest.approx(period)
        assert period == pytest.approx(
            mbps(30) * ms(100) / (0.5 * mbps(15))
        )

    def test_clamped_at_gamma_equal_to_c_attack(self):
        # gamma == C_attack -> zero spacing; the clamp floors the
        # period at the extent and from_gamma agrees.
        kwargs = dict(gamma=0.5, rate_bps=mbps(7.5), extent=ms(100),
                      bottleneck_bps=mbps(15))
        period = PulseTrain.period_from_gamma(**kwargs)
        assert period == pytest.approx(ms(100))
        train = PulseTrain.from_gamma(n_pulses=3, **kwargs)
        assert train.space == pytest.approx(0.0)

    @pytest.mark.parametrize("rate_bps,extent,bottleneck_bps", [
        (mbps(25), ms(50), mbps(15)),
        (mbps(30), ms(100), mbps(15)),
        (mbps(40), ms(75), mbps(10)),
        (mbps(50), ms(150), mbps(10)),
    ])
    def test_inverts_every_default_gamma(self, rate_bps, extent,
                                         bottleneck_bps):
        # Eq. (4) solved for the period must invert back to the exact
        # γ that was asked for, across the swept grid and attack
        # shapes whose C_attack stays above the grid (no clamping).
        from repro.experiments.base import default_gammas

        for gamma in default_gammas():
            period = PulseTrain.period_from_gamma(
                gamma=float(gamma), rate_bps=rate_bps, extent=extent,
                bottleneck_bps=bottleneck_bps,
            )
            recovered = rate_bps * extent / (period * bottleneck_bps)
            assert abs(recovered - gamma) <= 1e-12
