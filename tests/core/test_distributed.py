"""Distributed (multi-source) attack splitting."""

import pytest

from repro.core.attack import PulseTrain
from repro.core.distributed import split_interleaved, split_synchronized
from repro.util.errors import ValidationError
from repro.util.units import mbps, ms


@pytest.fixture
def train():
    return PulseTrain.uniform(ms(100), mbps(30), ms(300), n_pulses=20)


class TestSynchronized:
    def test_rate_divided(self, train):
        attack = split_synchronized(train, 5)
        assert attack.n_sources == 5
        for source_train in attack.trains:
            assert source_train.rate_bps == pytest.approx(mbps(6))
            assert source_train.period == pytest.approx(train.period)

    def test_offsets_zero(self, train):
        attack = split_synchronized(train, 3)
        assert attack.offsets == [0.0, 0.0, 0.0]

    def test_total_bits_preserved(self, train):
        attack = split_synchronized(train, 4)
        assert attack.aggregate_bits() == pytest.approx(
            train.total_attack_bits()
        )

    def test_per_source_gamma_divided(self, train):
        attack = split_synchronized(train, 5)
        assert attack.per_source_gamma(mbps(15)) == pytest.approx(
            train.gamma(mbps(15)) / 5
        )

    def test_single_source_is_identity(self, train):
        attack = split_synchronized(train, 1)
        assert attack.trains[0].rate_bps == train.rate_bps


class TestInterleaved:
    def test_period_stretched(self, train):
        attack = split_interleaved(train, 4)
        for source_train in attack.trains:
            assert source_train.period == pytest.approx(4 * train.period)
            assert source_train.rate_bps == train.rate_bps
            assert source_train.n_pulses == 5

    def test_offsets_staggered_by_period(self, train):
        attack = split_interleaved(train, 4)
        assert attack.offsets == pytest.approx(
            [0.0, train.period, 2 * train.period, 3 * train.period]
        )

    def test_total_bits_preserved(self, train):
        attack = split_interleaved(train, 5)
        assert attack.aggregate_bits() == pytest.approx(
            train.total_attack_bits()
        )

    def test_aggregate_schedule_is_original(self, train):
        """The union of all sources' pulse starts == the original's."""
        attack = split_interleaved(train, 5)
        combined = sorted(
            begin + offset
            for source_train, offset in zip(attack.trains, attack.offsets)
            for begin, _end in source_train.pulse_intervals()
        )
        original = [begin for begin, _end in train.pulse_intervals()]
        assert combined == pytest.approx(original)

    def test_indivisible_pulse_count_rejected(self, train):
        with pytest.raises(ValidationError, match="divisible"):
            split_interleaved(train, 3)  # 20 % 3 != 0

    def test_per_source_gamma_divided(self, train):
        attack = split_interleaved(train, 5)
        assert attack.per_source_gamma(mbps(15)) == pytest.approx(
            train.gamma(mbps(15)) / 5
        )


class TestValidation:
    def test_non_uniform_rejected(self):
        ragged = PulseTrain([0.1, 0.2], [mbps(1), mbps(2)], [0.3])
        with pytest.raises(ValidationError):
            split_synchronized(ragged, 2)

    def test_bad_source_count(self, train):
        with pytest.raises(ValidationError):
            split_synchronized(train, 0)
