"""Normal/under/over-gain classification (Section 4.1.1)."""

import numpy as np
import pytest

from repro.core.classify import GainRegime, classify_gain
from repro.util.errors import ValidationError


class TestRegimes:
    def test_normal_gain_close_agreement(self):
        analytical = [0.1, 0.3, 0.4, 0.3]
        measured = [0.12, 0.28, 0.43, 0.31]
        result = classify_gain(measured, analytical)
        assert result.regime is GainRegime.NORMAL

    def test_under_gain_analysis_overestimates(self):
        analytical = [0.3, 0.5, 0.6]
        measured = [0.1, 0.2, 0.25]
        result = classify_gain(measured, analytical)
        assert result.regime is GainRegime.UNDER
        assert result.mean_discrepancy < 0

    def test_over_gain_analysis_underestimates(self):
        analytical = [0.1, 0.2, 0.25]
        measured = [0.4, 0.5, 0.6]
        result = classify_gain(measured, analytical)
        assert result.regime is GainRegime.OVER
        assert result.mean_discrepancy > 0

    def test_tolerance_widens_normal_band(self):
        analytical = [0.2, 0.2]
        measured = [0.35, 0.35]
        assert classify_gain(measured, analytical).regime is GainRegime.OVER
        wide = classify_gain(measured, analytical, tolerance=0.2)
        assert wide.regime is GainRegime.NORMAL

    def test_offsetting_errors_report_abs_discrepancy(self):
        analytical = [0.2, 0.4]
        measured = [0.4, 0.2]  # +0.2 and -0.2 cancel in the mean
        result = classify_gain(measured, analytical)
        assert result.regime is GainRegime.NORMAL
        assert result.mean_discrepancy == pytest.approx(0.0)
        assert result.mean_abs_discrepancy == pytest.approx(0.2)


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            classify_gain([0.1, 0.2], [0.1])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            classify_gain([], [])

    def test_nonpositive_tolerance(self):
        with pytest.raises(ValidationError):
            classify_gain([0.1], [0.1], tolerance=0.0)

    def test_n_points_recorded(self):
        result = classify_gain([0.1, 0.2, 0.3], [0.1, 0.2, 0.3])
        assert result.n_points == 3
