"""The Section-3 optimization: Propositions 3-4 and Corollaries 1-4."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.attack import PulseTrain
from repro.core.gain import RiskPreference, attack_gain
from repro.core.optimizer import (
    OptimalAttack,
    gain_derivative_sign,
    optimal_attack,
    optimal_gamma,
    optimal_gamma_numerical,
    optimal_mu,
    optimal_period,
    optimal_period_ratio,
)
from repro.core.throughput import VictimPopulation, c_psi
from repro.util.errors import ValidationError
from repro.util.units import mbps, ms


class TestProposition3:
    @given(c=st.floats(0.02, 0.95), kappa=st.floats(0.05, 40.0))
    @settings(max_examples=150)
    def test_closed_form_matches_numerical(self, c, kappa):
        closed = optimal_gamma(c, kappa)
        numeric = optimal_gamma_numerical(c, kappa)
        assert closed == pytest.approx(numeric, abs=2e-4)

    @given(c=st.floats(0.01, 0.99), kappa=st.floats(0.01, 100.0))
    @settings(max_examples=150)
    def test_feasibility_cpsi_lt_gamma_lt_one(self, c, kappa):
        gamma_star = optimal_gamma(c, kappa)
        assert c < gamma_star < 1.0

    @given(c=st.floats(0.02, 0.9), kappa=st.floats(0.1, 20.0))
    @settings(max_examples=100)
    def test_is_a_maximum(self, c, kappa):
        gamma_star = optimal_gamma(c, kappa)
        best = attack_gain(gamma_star, c, kappa)
        for offset in (-0.02, 0.02):
            probe = gamma_star + offset
            if c < probe < 1:
                assert attack_gain(probe, c, kappa) <= best + 1e-12

    def test_gamma_star_increases_with_cpsi(self):
        values = [optimal_gamma(c, 1.0) for c in (0.1, 0.3, 0.5, 0.7)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_gamma_star_decreases_with_kappa(self):
        values = [optimal_gamma(0.3, k) for k in (0.2, 1.0, 5.0, 25.0)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_invalid_cpsi_rejected(self):
        with pytest.raises(ValidationError):
            optimal_gamma(1.2, 1.0)
        with pytest.raises(ValidationError):
            optimal_gamma(0.0, 1.0)


class TestCorollaries:
    def test_corollary1_risk_averse_limit(self):
        # kappa -> inf: gamma* -> C_psi
        assert optimal_gamma(0.3, 1e8) == pytest.approx(0.3, abs=1e-3)

    def test_corollary2_risk_loving_limit(self):
        # kappa -> 0: gamma* -> 1 (the flooding attacker)
        assert optimal_gamma(0.3, 1e-8) == pytest.approx(1.0, abs=1e-3)

    def test_corollary3_risk_neutral(self):
        for c in (0.04, 0.25, 0.81):
            assert optimal_gamma(c, 1.0) == pytest.approx(math.sqrt(c))

    def test_kappa_near_one_continuous(self):
        """The dedicated kappa==1 branch agrees with the general formula."""
        for c in (0.1, 0.5, 0.9):
            below = optimal_gamma(c, 1.0 - 1e-9)
            exact = optimal_gamma(c, 1.0)
            above = optimal_gamma(c, 1.0 + 1e-9)
            assert below == pytest.approx(exact, rel=1e-5)
            assert above == pytest.approx(exact, rel=1e-5)


class TestDerivativeSign:
    """The Eq. (15) sign structure used to prove uniqueness."""

    @given(c=st.floats(0.05, 0.8), kappa=st.floats(0.2, 10.0))
    @settings(max_examples=100)
    def test_positive_below_star_negative_above(self, c, kappa):
        gamma_star = optimal_gamma(c, kappa)
        below = (c + gamma_star) / 2
        above = (gamma_star + 1.0) / 2
        if below < gamma_star - 1e-6:
            assert gain_derivative_sign(below, c, kappa) == 1
        if above > gamma_star + 1e-6 and above < 1:
            assert gain_derivative_sign(above, c, kappa) == -1

    def test_zero_at_star(self):
        c, kappa = 0.3, 2.0
        gamma_star = optimal_gamma(c, kappa)
        assert gain_derivative_sign(gamma_star, c, kappa) in (0, 1, -1)
        # Numerically the polynomial should be ~0 there:
        value = -kappa * gamma_star**2 + c * (kappa - 1) * gamma_star + c
        assert value == pytest.approx(0.0, abs=1e-9)


class TestProposition4:
    def test_mu_consistent_with_eq7(self):
        # gamma* must equal C_attack / (1 + mu*).
        c, kappa, c_attack = 0.25, 2.0, 2.0
        mu = optimal_mu(c, kappa, c_attack)
        assert optimal_gamma(c, kappa) == pytest.approx(c_attack / (1 + mu))

    def test_period_ratio_is_one_plus_mu(self):
        c, kappa, c_attack = 0.25, 2.0, 2.0
        assert optimal_period_ratio(c, kappa, c_attack) == pytest.approx(
            1.0 + optimal_mu(c, kappa, c_attack)
        )

    def test_corollary4_risk_neutral(self):
        # 1 + mu* = C_attack / sqrt(C_psi)
        c, c_attack = 0.25, 2.0
        assert optimal_period_ratio(c, 1.0, c_attack) == pytest.approx(
            c_attack / math.sqrt(c)
        )

    def test_optimal_period_scales_with_extent(self):
        c, kappa, c_attack = 0.25, 1.0, 2.0
        p1 = optimal_period(c, kappa, c_attack, extent=0.05)
        p2 = optimal_period(c, kappa, c_attack, extent=0.10)
        assert p2 == pytest.approx(2 * p1)

    def test_unreachable_gamma_raises(self):
        # gamma* = 0.5 but C_attack below it -> no nonnegative spacing.
        with pytest.raises(ValidationError, match="pulse rate"):
            optimal_mu(0.25, 1.0, c_attack=0.4)


class TestOptimalAttackPlanner:
    @pytest.fixture
    def victims(self):
        return VictimPopulation(rtts=np.linspace(0.02, 0.46, 15),
                                delayed_ack=2)

    def test_end_to_end_consistency(self, victims):
        plan = optimal_attack(victims, rate_bps=mbps(30), extent=ms(100),
                              bottleneck_bps=mbps(15), kappa=1.0)
        assert isinstance(plan, OptimalAttack)
        expected_c = c_psi(victims, extent=ms(100), rate_bps=mbps(30),
                           bottleneck_bps=mbps(15))
        assert plan.c_psi == pytest.approx(expected_c)
        assert plan.gamma_star == pytest.approx(math.sqrt(expected_c))
        assert plan.risk is RiskPreference.RISK_NEUTRAL
        assert plan.train.gamma(mbps(15)) == pytest.approx(plan.gamma_star)
        assert plan.period_star == pytest.approx(plan.train.period, rel=1e-6)
        assert plan.gain_star == pytest.approx(
            attack_gain(plan.gamma_star, plan.c_psi, 1.0)
        )

    def test_degradation_star(self, victims):
        plan = optimal_attack(victims, rate_bps=mbps(30), extent=ms(100),
                              bottleneck_bps=mbps(15), kappa=2.0)
        assert plan.degradation_star == pytest.approx(
            1 - plan.c_psi / plan.gamma_star
        )

    def test_infeasible_scenario_rejected(self):
        # Overwhelming victim population: C_psi >= 1.
        heavy = VictimPopulation(rtts=[0.02] * 50, delayed_ack=1)
        with pytest.raises(ValidationError, match="C_psi"):
            optimal_attack(heavy, rate_bps=mbps(40), extent=ms(100),
                           bottleneck_bps=mbps(15))

    def test_n_pulses_passed_through(self, victims):
        plan = optimal_attack(victims, rate_bps=mbps(30), extent=ms(100),
                              bottleneck_bps=mbps(15), n_pulses=17)
        assert plan.train.n_pulses == 17
