"""Throughput analysis: Eq. 1, Propositions 1-2, Lemmas 1-2, Eq. 18."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.throughput import (
    VictimPopulation,
    aggregate_attack_throughput,
    c_psi,
    c_victim,
    converged_window,
    degradation,
    normal_throughput,
    per_flow_attack_throughput_exact,
    pulses_to_converge,
    window_after_pulses,
)
from repro.sim.tcp.params import AIMDParams
from repro.util.errors import ValidationError
from repro.util.units import mbps, ms

STD = AIMDParams.standard_tcp()


class TestConvergedWindow:
    def test_eq1_value(self):
        # W_c = a/(1-b) * T/(d*RTT) = 2 * 2.0 / (1 * 0.2) = 20
        assert converged_window(STD, 1, 2.0, 0.2) == pytest.approx(20.0)

    def test_delayed_ack_halves(self):
        w1 = converged_window(STD, 1, 2.0, 0.2)
        w2 = converged_window(STD, 2, 2.0, 0.2)
        assert w2 == pytest.approx(w1 / 2)

    def test_fixed_point_property(self):
        """W_c satisfies W = b W + (a/d) T/RTT exactly."""
        for aimd in (STD, AIMDParams(0.31, 0.875), AIMDParams(2.0, 0.3)):
            for d in (1, 2):
                w = converged_window(aimd, d, 1.5, 0.25)
                restored = aimd.decrease * w + (aimd.increase / d) * 1.5 / 0.25
                assert restored == pytest.approx(w)

    @given(period=st.floats(0.05, 5.0), rtt=st.floats(0.01, 1.0),
           b=st.floats(0.1, 0.9))
    def test_scales_linearly_with_period(self, period, rtt, b):
        aimd = AIMDParams(1.0, b)
        one = converged_window(aimd, 1, period, rtt)
        two = converged_window(aimd, 1, 2 * period, rtt)
        assert two == pytest.approx(2 * one)


class TestWindowTrajectory:
    def test_n_zero_is_initial(self):
        assert window_after_pulses(STD, 1, 2.0, 0.2, 64.0, 0) == 64.0

    def test_one_step_recurrence(self):
        w1 = window_after_pulses(STD, 1, 2.0, 0.2, 64.0, 1)
        assert w1 == pytest.approx(0.5 * 64.0 + 1.0 * 2.0 / 0.2)

    def test_converges_to_wc(self):
        w_inf = window_after_pulses(STD, 1, 2.0, 0.2, 64.0, 50)
        assert w_inf == pytest.approx(converged_window(STD, 1, 2.0, 0.2))

    def test_monotone_from_above(self):
        values = [window_after_pulses(STD, 1, 2.0, 0.2, 64.0, n)
                  for n in range(8)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_monotone_from_below(self):
        values = [window_after_pulses(STD, 1, 2.0, 0.2, 1.0, n)
                  for n in range(8)]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_negative_n_rejected(self):
        with pytest.raises(ValidationError):
            window_after_pulses(STD, 1, 2.0, 0.2, 64.0, -1)


class TestPulsesToConverge:
    def test_paper_claim_fewer_than_ten(self):
        """The paper: standard TCP converges within ~10 pulses (Lemma 2 proof).

        At 10% tolerance the bound holds across the paper's whole RTT
        range, since b = 0.5 halves the gap to W_c every pulse.
        """
        for rtt in np.linspace(0.02, 0.46, 10):
            for period in (0.3, 1.0, 2.0):
                n = pulses_to_converge(STD, 1, period, rtt, w_initial=100.0,
                                       rtol=0.1)
                assert n <= 10

    def test_already_converged_needs_one(self):
        w_c = converged_window(STD, 1, 2.0, 0.2)
        assert pulses_to_converge(STD, 1, 2.0, 0.2, w_c) == 1

    def test_gentle_decrease_converges_slower(self):
        fast = pulses_to_converge(STD, 1, 1.0, 0.2, 200.0)
        slow = pulses_to_converge(AIMDParams(1.0, 0.9), 1, 1.0, 0.2, 200.0)
        assert slow > fast

    def test_result_actually_converges(self):
        n = pulses_to_converge(STD, 1, 1.0, 0.1, 500.0, rtol=0.05)
        w_c = converged_window(STD, 1, 1.0, 0.1)
        w_n = window_after_pulses(STD, 1, 1.0, 0.1, 500.0, n)
        assert abs(w_n - w_c) <= 0.05 * w_c * (1 + 1e-9)


class TestProposition1:
    def test_steady_state_only_matches_lemma2_per_flow(self):
        """With W_1 = W_c there is no transient; Prop. 1 == Lemma 2 term."""
        period, rtt, n_pulses = 1.0, 0.2, 50
        w_c = converged_window(STD, 1, period, rtt)
        exact = per_flow_attack_throughput_exact(
            aimd=STD, delayed_ack=1, period=period, rtt=rtt,
            n_pulses=n_pulses, w_initial=w_c, s_packet=1500.0,
        )
        rounds = period / rtt
        steady = 1.5 / (2 * 0.5) * rounds * rounds  # a(1+b)/(2d(1-b)) (T/RTT)^2
        expected = steady * (n_pulses - 1) * 1500.0
        assert exact == pytest.approx(expected, rel=0.01)

    def test_transient_adds_throughput_from_large_window(self):
        period, rtt = 1.0, 0.2
        w_c = converged_window(STD, 1, period, rtt)
        from_converged = per_flow_attack_throughput_exact(
            aimd=STD, delayed_ack=1, period=period, rtt=rtt,
            n_pulses=40, w_initial=w_c,
        )
        from_large = per_flow_attack_throughput_exact(
            aimd=STD, delayed_ack=1, period=period, rtt=rtt,
            n_pulses=40, w_initial=10 * w_c,
        )
        assert from_large > from_converged

    def test_approximation_error_vanishes_for_long_attacks(self):
        """Lemma 2's W_n ~= W_c approximation: relative error -> 0 as N grows."""
        period, rtt = 1.0, 0.2
        victims = VictimPopulation(rtts=[rtt])
        errors = []
        for n_pulses in (10, 100, 1000):
            exact = per_flow_attack_throughput_exact(
                aimd=STD, delayed_ack=1, period=period, rtt=rtt,
                n_pulses=n_pulses, w_initial=100.0,
            )
            approx = aggregate_attack_throughput(victims, period, n_pulses)
            errors.append(abs(exact - approx) / exact)
        assert errors[0] > errors[1] > errors[2]
        assert errors[2] < 0.02


class TestLemmas:
    def test_normal_throughput_eq8(self):
        # 15 Mb/s * 9 periods * 2 s / 8 = 33.75 MB
        value = normal_throughput(mbps(15), 2.0, 10)
        assert value == pytest.approx(15e6 * 9 * 2.0 / 8)

    def test_normal_throughput_needs_two_pulses(self):
        with pytest.raises(ValidationError):
            normal_throughput(mbps(15), 2.0, 1)

    def test_aggregate_attack_scales_with_period_squared(self):
        victims = VictimPopulation(rtts=[0.1, 0.2])
        one = aggregate_attack_throughput(victims, 0.5, 20)
        two = aggregate_attack_throughput(victims, 1.0, 20)
        assert two == pytest.approx(4 * one)

    def test_aggregate_attack_sums_over_flows(self):
        lone = VictimPopulation(rtts=[0.1])
        pair = VictimPopulation(rtts=[0.1, 0.1])
        assert aggregate_attack_throughput(pair, 1.0, 10) == pytest.approx(
            2 * aggregate_attack_throughput(lone, 1.0, 10)
        )


class TestProposition2:
    def test_c_psi_is_cvictim_extent_cattack(self):
        """Eq. (11) == Eq. (18) decomposition."""
        victims = VictimPopulation(rtts=np.linspace(0.02, 0.46, 15),
                                   delayed_ack=2)
        extent, rate, bottleneck = ms(100), mbps(25), mbps(15)
        lhs = c_psi(victims, extent=extent, rate_bps=rate,
                    bottleneck_bps=bottleneck)
        rhs = c_victim(victims, bottleneck) * extent * (rate / bottleneck)
        assert lhs == pytest.approx(rhs)

    def test_degradation_formula(self):
        assert degradation(0.5, 0.25) == pytest.approx(0.5)

    def test_degradation_negative_below_cpsi(self):
        assert degradation(0.1, 0.25) < 0

    def test_gamma_consistency_with_throughput_ratio(self):
        """1 - C_psi/gamma must equal 1 - Psi_attack/Psi_normal."""
        victims = VictimPopulation(rtts=[0.1, 0.2, 0.3], delayed_ack=2)
        extent, rate, bottleneck = ms(100), mbps(30), mbps(15)
        gamma = 0.4
        period = rate * extent / (gamma * bottleneck)
        n_pulses = 100
        psi_attack = aggregate_attack_throughput(victims, period, n_pulses)
        psi_normal = normal_throughput(bottleneck, period, n_pulses)
        direct = 1.0 - psi_attack / psi_normal
        via_cpsi = degradation(
            gamma,
            c_psi(victims, extent=extent, rate_bps=rate,
                  bottleneck_bps=bottleneck),
        )
        assert direct == pytest.approx(via_cpsi, rel=1e-9)

    def test_delayed_ack_halves_cpsi(self):
        kwargs = dict(extent=ms(100), rate_bps=mbps(25),
                      bottleneck_bps=mbps(15))
        d1 = c_psi(VictimPopulation(rtts=[0.1], delayed_ack=1), **kwargs)
        d2 = c_psi(VictimPopulation(rtts=[0.1], delayed_ack=2), **kwargs)
        assert d2 == pytest.approx(d1 / 2)


class TestVictimPopulation:
    def test_inverse_rtt_square_sum(self):
        victims = VictimPopulation(rtts=[0.1, 0.2])
        assert victims.inverse_rtt_square_sum() == pytest.approx(100 + 25)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            VictimPopulation(rtts=[])

    def test_nonpositive_rtt_rejected(self):
        with pytest.raises(ValidationError):
            VictimPopulation(rtts=[0.1, 0.0])

    def test_bad_delayed_ack_rejected(self):
        with pytest.raises(ValidationError):
            VictimPopulation(rtts=[0.1], delayed_ack=0)
