"""The timeout-based attack planner."""

import pytest

from repro.core.shrew import is_shrew_point
from repro.core.timeout_attack import plan_timeout_attack
from repro.util.errors import ValidationError
from repro.util.units import mbps, ms


def make_plan(**overrides):
    params = dict(
        min_rto=1.0,
        bottleneck_bps=mbps(15),
        buffer_bytes=180 * 1500.0,
        rtt_max=0.46,
    )
    params.update(overrides)
    return plan_timeout_attack(**params)


class TestPlanning:
    def test_period_is_harmonic(self):
        plan = make_plan()
        assert plan.period == 1.0
        assert is_shrew_point(plan.period, 1.0)

    def test_higher_harmonic_shortens_period(self):
        plan = make_plan(harmonic=2, rtt_max=0.3)
        assert plan.period == pytest.approx(0.5)

    def test_extent_covers_largest_rtt(self):
        plan = make_plan()
        assert plan.extent == pytest.approx(0.46)

    def test_rate_fills_buffer_within_extent(self):
        plan = make_plan(headroom=1.0)
        # With headroom 1.0 the buffer fills exactly at the pulse's end.
        assert plan.time_to_fill_buffer() == pytest.approx(plan.extent)
        assert plan.outage_fraction() == pytest.approx(0.0, abs=1e-9)

    def test_headroom_creates_outage(self):
        plan = make_plan(headroom=2.0)
        assert plan.outage_fraction() > 0.4

    def test_gamma_reported(self):
        plan = make_plan()
        expected = plan.rate_bps * plan.extent / (mbps(15) * plan.period)
        assert plan.gamma == pytest.approx(expected)

    def test_train_matches_plan(self):
        plan = make_plan()
        train = plan.train(7)
        assert train.n_pulses == 7
        assert train.period == pytest.approx(plan.period)
        assert train.rate_bps == pytest.approx(plan.rate_bps)

    def test_render_mentions_shrew_mechanism(self):
        assert "shrew" in make_plan().render()


class TestValidation:
    def test_rtt_exceeding_period_rejected(self):
        with pytest.raises(ValidationError, match="harmonic"):
            make_plan(min_rto=0.2, rtt_max=0.46)

    def test_bad_harmonic(self):
        with pytest.raises(ValidationError):
            make_plan(harmonic=0)

    def test_bad_headroom(self):
        with pytest.raises(ValidationError):
            make_plan(headroom=0.0)
