"""Shrew-point prediction (Section 4.1.3, Fig. 10)."""

import pytest

from repro.core.shrew import (
    flag_shrew_points,
    is_shrew_point,
    nearest_shrew_harmonic,
    shrew_periods,
)
from repro.util.errors import ValidationError


class TestShrewPeriods:
    def test_ns2_min_rto_harmonics(self):
        """The Fig.-10 points: 1000, 500, 1000/3 ms for minRTO = 1 s."""
        periods = shrew_periods(1.0, max_harmonic=3)
        assert periods == pytest.approx([1.0, 0.5, 1.0 / 3.0])

    def test_linux_min_rto(self):
        periods = shrew_periods(0.2, max_harmonic=2)
        assert periods == pytest.approx([0.2, 0.1])

    def test_invalid_harmonic(self):
        with pytest.raises(ValidationError):
            shrew_periods(1.0, max_harmonic=0)


class TestIsShrewPoint:
    def test_exact_harmonics_match(self):
        for n in (1, 2, 3):
            assert is_shrew_point(1.0 / n, 1.0)

    def test_tolerance_boundary(self):
        assert is_shrew_point(1.05, 1.0, rtol=0.08)
        assert not is_shrew_point(1.2, 1.0, rtol=0.08)

    def test_off_harmonic_rejected(self):
        assert not is_shrew_point(0.7, 1.0)
        assert not is_shrew_point(1.6, 1.0)

    def test_harmonic_limit_respected(self):
        # 0.2 s is the 5th harmonic of 1 s.
        assert is_shrew_point(0.2, 1.0, max_harmonic=5)
        assert not is_shrew_point(0.2, 1.0, max_harmonic=3)


class TestNearestHarmonic:
    def test_values(self):
        assert nearest_shrew_harmonic(1.02, 1.0) == 1
        assert nearest_shrew_harmonic(0.48, 1.0) == 2
        assert nearest_shrew_harmonic(0.34, 1.0) == 3


class TestFlagging:
    def test_flags_carry_index_and_harmonic(self):
        periods = [2.0, 1.0, 0.77, 0.5]
        flagged = flag_shrew_points(periods, 1.0)
        assert [(p.index, p.harmonic) for p in flagged] == [(1, 1), (3, 2)]

    def test_no_false_positives_on_clean_sweep(self):
        periods = [2.2, 1.7, 1.35, 0.8, 0.6]
        assert flag_shrew_points(periods, 1.0) == []

    def test_empty_input(self):
        assert flag_shrew_points([], 1.0) == []
