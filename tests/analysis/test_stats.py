"""Fairness index and per-flow damage summaries."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.stats import FlowDamage, jain_fairness_index, per_flow_damage
from repro.util.errors import ValidationError


class TestJainIndex:
    def test_equal_shares_are_fair(self):
        assert jain_fairness_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_monopoly_is_one_over_n(self):
        assert jain_fairness_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_all_zero_is_vacuously_fair(self):
        assert jain_fairness_index([0.0, 0.0]) == 1.0

    def test_scale_invariant(self):
        base = [1.0, 2.0, 3.0]
        assert jain_fairness_index(base) == pytest.approx(
            jain_fairness_index([x * 7 for x in base])
        )

    @given(st.lists(st.floats(0.0, 1e6), min_size=1, max_size=30))
    def test_bounded(self, allocations):
        index = jain_fairness_index(allocations)
        assert 1.0 / len(allocations) - 1e-9 <= index <= 1.0 + 1e-9

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            jain_fairness_index([1.0, -0.1])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            jain_fairness_index([])


class TestFlowDamage:
    def test_degradation(self):
        damage = FlowDamage(rtt=0.1, baseline_bytes=100.0, attacked_bytes=25.0)
        assert damage.degradation == pytest.approx(0.75)

    def test_zero_baseline(self):
        damage = FlowDamage(rtt=0.1, baseline_bytes=0.0, attacked_bytes=0.0)
        assert damage.degradation == 0.0

    def test_pairing(self):
        records = per_flow_damage([0.1, 0.2], [100.0, 200.0], [50.0, 100.0])
        assert len(records) == 2
        assert records[1].rtt == 0.2
        assert records[1].degradation == pytest.approx(0.5)

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            per_flow_damage([0.1], [1.0, 2.0], [0.5])


class TestMeanCI:
    def test_known_halfwidth(self):
        from scipy import stats as sps

        from repro.analysis.stats import mean_ci_halfwidth

        samples = [1.0, 2.0, 3.0, 4.0]
        expected = (sps.t.ppf(0.975, df=3)
                    * (5.0 / 3.0) ** 0.5 / 2.0)
        assert mean_ci_halfwidth(samples) == pytest.approx(expected)

    def test_single_sample_is_unbounded(self):
        from repro.analysis.stats import mean_ci_halfwidth

        assert mean_ci_halfwidth([2.5]) == float("inf")

    def test_zero_variance_is_zero_width(self):
        from repro.analysis.stats import mean_ci_halfwidth

        assert mean_ci_halfwidth([0.3, 0.3, 0.3]) == 0.0

    def test_bad_inputs_rejected(self):
        from repro.analysis.stats import mean_ci_halfwidth

        with pytest.raises(ValidationError):
            mean_ci_halfwidth([])
        with pytest.raises(ValidationError):
            mean_ci_halfwidth([1.0, 2.0], confidence=1.0)


class TestCIStable:
    def test_stable_when_halfwidth_within_tolerance(self):
        from repro.analysis.stats import ci_stable

        assert ci_stable([1.0, 1.01, 0.99], rel_tol=0.1)
        assert not ci_stable([1.0, 2.0, 0.5], rel_tol=0.1)

    def test_single_sample_never_stable(self):
        from repro.analysis.stats import ci_stable

        assert not ci_stable([1.0], rel_tol=10.0)

    def test_scale_floor_rescues_near_zero_means(self):
        from repro.analysis.stats import ci_stable

        # Mean ~0 makes any finite CI "relatively" huge; the floor
        # supplies the scale the quantity is judged against.
        samples = [0.001, -0.001, 0.0005]
        assert not ci_stable(samples, rel_tol=0.15)
        assert ci_stable(samples, rel_tol=0.15, scale_floor=0.1)
