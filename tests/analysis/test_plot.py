"""Terminal plotting helpers."""

import numpy as np
import pytest

from repro.analysis.plot import scatter_grid, sparkline
from repro.util.errors import ValidationError


class TestSparkline:
    def test_constant_series(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert len(line) == 3
        assert len(set(line)) == 1

    def test_min_and_max_blocks(self):
        line = sparkline([0.0, 1.0])
        assert line[0] == " "
        assert line[1] == "█"

    def test_long_series_reduced(self):
        line = sparkline(np.sin(np.linspace(0, 10, 1000)), width=50)
        assert len(line) <= 51

    def test_monotone_series_monotone_blocks(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0], width=10)
        blocks = " ▁▂▃▄▅▆▇█"
        levels = [blocks.index(ch) for ch in line]
        assert levels == sorted(levels)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            sparkline([])

    def test_bad_width(self):
        with pytest.raises(ValidationError):
            sparkline([1.0], width=0)


class TestScatterGrid:
    def test_basic_render(self):
        text = scatter_grid(
            [0.1, 0.5, 0.9],
            [[0.2, 0.6, 0.1], [0.1, 0.3, 0.2]],
            labels=["measured", "analytic"],
        )
        assert "o" in text
        assert "x" in text
        assert "measured" in text
        assert "analytic" in text

    def test_grid_dimensions(self):
        text = scatter_grid([0.0, 1.0], [[0.0, 1.0]], height=5, width=20)
        grid_lines = [l for l in text.splitlines() if "|" in l]
        assert len(grid_lines) == 5
        assert all(len(l.split("|", 1)[1]) == 20 for l in grid_lines)

    def test_extremes_placed_at_corners(self):
        text = scatter_grid([0.0, 1.0], [[0.0, 1.0]], height=5, width=20)
        rows = [l.split("|", 1)[1] for l in text.splitlines() if "|" in l]
        assert rows[0][-1] == "o"   # max y at max x: top-right
        assert rows[-1][0] == "o"   # min y at min x: bottom-left

    def test_fixed_y_range(self):
        text = scatter_grid([0.0, 1.0], [[0.4, 0.6]], y_min=0.0, y_max=1.0)
        assert text.splitlines()[0].startswith("   1.000")

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValidationError):
            scatter_grid([0.0, 1.0], [[0.5]])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            scatter_grid([], [[]])
        with pytest.raises(ValidationError):
            scatter_grid([1.0], [])
