"""Synchronization detection: pinnacles, ACF and FFT period estimates."""

import numpy as np
import pytest

from repro.analysis.sync import (
    analyze_synchronization,
    autocorrelation_period,
    count_pinnacles,
    fft_period,
)
from repro.util.errors import ValidationError


def pulse_train_series(n_bins=600, period_bins=60, width_bins=1,
                       amplitude=10.0, noise=0.3, seed=0, offset=5):
    """A synthetic incoming-traffic series with sharp periodic pulses.

    Pulses start at *offset* so the first one is an interior sample
    (boundary samples cannot be local maxima).
    """
    rng = np.random.default_rng(seed)
    series = rng.normal(1.0, noise, n_bins)
    for start in range(offset, n_bins, period_bins):
        series[start:start + width_bins] += amplitude
    return series


class TestCountPinnacles:
    def test_counts_periodic_pulses(self):
        series = pulse_train_series()
        assert count_pinnacles(series) == 10

    def test_flat_series_has_none(self):
        rng = np.random.default_rng(1)
        series = rng.normal(0.0, 1.0, 500)
        # 1-sigma threshold: random noise has local maxima above it, so use
        # a strict threshold to show the count collapses without structure.
        assert count_pinnacles(series, threshold_sigma=4.0) == 0

    def test_min_separation_merges_plateau(self):
        series = np.zeros(50)
        series[10:13] = 5.0  # one wide pulse
        assert count_pinnacles(series, min_separation=5) == 1

    def test_too_short_rejected(self):
        with pytest.raises(ValidationError):
            count_pinnacles(np.array([1.0, 2.0]))

    def test_bad_separation_rejected(self):
        with pytest.raises(ValidationError):
            count_pinnacles(np.zeros(10), min_separation=0)


class TestAutocorrelationPeriod:
    def test_recovers_pulse_period(self):
        series = pulse_train_series(period_bins=50)
        period = autocorrelation_period(series, bin_width=0.1)
        assert period == pytest.approx(5.0, rel=0.05)

    def test_sine_period(self):
        t = np.arange(1000) * 0.01
        series = np.sin(2 * np.pi * t / 2.0)
        period = autocorrelation_period(series, bin_width=0.01)
        assert period == pytest.approx(2.0, rel=0.05)

    def test_white_noise_returns_none(self):
        rng = np.random.default_rng(3)
        series = rng.normal(0, 1, 800)
        assert autocorrelation_period(series, bin_width=0.1) is None

    def test_too_short_rejected(self):
        with pytest.raises(ValidationError):
            autocorrelation_period(np.array([1.0, 2.0]), 0.1)


class TestFFTPeriod:
    def test_recovers_pulse_period(self):
        series = pulse_train_series(n_bins=600, period_bins=60)
        period = fft_period(series, bin_width=0.1)
        assert period == pytest.approx(6.0, rel=0.05)

    def test_sine_period(self):
        t = np.arange(1024) * 0.01
        series = np.sin(2 * np.pi * t / 0.64)
        assert fft_period(series, 0.01) == pytest.approx(0.64, rel=0.02)

    def test_too_short_rejected(self):
        with pytest.raises(ValidationError):
            fft_period(np.array([1.0, 2.0, 3.0]), 0.1)


class TestAnalyzeSynchronization:
    def test_full_report_consistency(self):
        # 600 bins of 0.1 s = 60 s window, pulses every 6 s -> 10 pinnacles.
        series = pulse_train_series(n_bins=600, period_bins=60)
        report = analyze_synchronization(series, bin_width=0.1)
        assert report.window == pytest.approx(60.0)
        assert report.pinnacles == 10
        assert report.pinnacle_period == pytest.approx(6.0)
        assert report.consistent_with(6.0)

    def test_inconsistent_with_wrong_period(self):
        series = pulse_train_series(n_bins=600, period_bins=60)
        report = analyze_synchronization(series, bin_width=0.1)
        assert not report.consistent_with(2.5)

    def test_no_pinnacles_reports_none(self):
        series = np.ones(100)
        report = analyze_synchronization(series, bin_width=0.1)
        assert report.pinnacles == 0
        assert report.pinnacle_period is None
        assert not report.consistent_with(1.0)
