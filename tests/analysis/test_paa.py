"""Normalization and Piecewise Aggregate Approximation."""

import numpy as np
import pytest
from hypothesis import assume, given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.analysis.paa import normalize, paa, paa_series, znormalize
from repro.util.errors import ValidationError

finite_series = arrays(
    np.float64, st.integers(2, 200),
    elements=st.floats(-1e6, 1e6, allow_nan=False),
)


class TestNormalize:
    def test_zero_mean(self):
        out = normalize(np.array([1.0, 2.0, 3.0]))
        assert out.mean() == pytest.approx(0.0)
        assert list(out) == [-1.0, 0.0, 1.0]

    @given(series=finite_series)
    def test_zero_mean_property(self, series):
        out = normalize(series)
        assert abs(out.mean()) < 1e-6 * max(1.0, np.abs(series).max())

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            normalize(np.array([]))


class TestZNormalize:
    def test_unit_variance(self):
        out = znormalize(np.array([1.0, 3.0, 5.0, 7.0]))
        assert out.mean() == pytest.approx(0.0)
        assert out.std() == pytest.approx(1.0)

    def test_constant_series_all_zeros(self):
        out = znormalize(np.full(5, 42.0))
        assert np.all(out == 0.0)

    @given(series=finite_series)
    def test_scale_invariance(self, series):
        assume(np.ptp(series) > 1e-3)  # near-constant series are degenerate
        base = znormalize(series)
        scaled = znormalize(series * 3.0 + 7.0)
        assert np.allclose(base, scaled, atol=1e-6)


class TestPAA:
    def test_exact_divisible(self):
        series = np.array([1.0, 3.0, 2.0, 4.0, 10.0, 20.0])
        assert list(paa(series, 3)) == [2.0, 3.0, 15.0]

    def test_identity_when_segments_equal_length(self):
        series = np.array([5.0, 1.0, 9.0])
        assert list(paa(series, 3)) == [5.0, 1.0, 9.0]

    def test_single_segment_is_mean(self):
        series = np.arange(10.0)
        assert paa(series, 1)[0] == pytest.approx(series.mean())

    def test_fractional_boundaries_preserve_mean(self):
        # 5 samples into 2 segments: weighted boundaries.
        series = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        out = paa(series, 2)
        # Overall mean is conserved by the fractional weighting.
        assert out.mean() == pytest.approx(series.mean())

    @given(series=finite_series, n=st.integers(1, 20))
    def test_mean_preserved_property(self, series, n):
        n_segments = min(n, series.size)
        out = paa(series, n_segments)
        scale = max(1.0, np.abs(series).max())
        assert out.mean() == pytest.approx(series.mean(), abs=1e-6 * scale)

    def test_out_of_range_segments(self):
        with pytest.raises(ValidationError):
            paa(np.arange(4.0), 5)
        with pytest.raises(ValidationError):
            paa(np.arange(4.0), 0)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            paa(np.array([]), 1)


class TestPAASeries:
    def test_fixed_width(self):
        series = np.arange(10.0)
        out = paa_series(series, 2)
        assert list(out) == [0.5, 2.5, 4.5, 6.5, 8.5]

    def test_truncates_remainder(self):
        series = np.arange(7.0)
        out = paa_series(series, 3)
        assert len(out) == 2  # uses the first 6 samples

    def test_width_larger_than_series(self):
        out = paa_series(np.array([1.0, 2.0]), 10)
        assert list(out) == [1.5]

    def test_invalid_width(self):
        with pytest.raises(ValidationError):
            paa_series(np.arange(4.0), 0)
