"""Jacobson/Karels RTO estimation."""

import pytest

from repro.sim.tcp.rto import RTOEstimator


class TestInitialState:
    def test_initial_rto_used_before_samples(self):
        est = RTOEstimator(min_rto=0.2, initial_rto=3.0)
        assert est.rto == 3.0
        assert est.srtt is None

    def test_initial_rto_clamped(self):
        est = RTOEstimator(min_rto=0.5, max_rto=60.0, initial_rto=0.1)
        assert est.rto == 0.5


class TestSampling:
    def test_first_sample_initializes(self):
        est = RTOEstimator(min_rto=0.01)
        est.sample(0.1)
        assert est.srtt == pytest.approx(0.1)
        assert est.rttvar == pytest.approx(0.05)
        assert est.rto == pytest.approx(0.1 + 4 * 0.05)

    def test_constant_rtt_converges(self):
        est = RTOEstimator(min_rto=0.01)
        for _ in range(200):
            est.sample(0.1)
        assert est.srtt == pytest.approx(0.1)
        assert est.rttvar == pytest.approx(0.0, abs=1e-3)
        assert est.rto >= 0.01

    def test_variance_grows_with_jitter(self):
        est = RTOEstimator(min_rto=0.01)
        for i in range(100):
            est.sample(0.1 if i % 2 == 0 else 0.3)
        assert est.rttvar > 0.05

    def test_min_rto_floor(self):
        est = RTOEstimator(min_rto=1.0)
        for _ in range(50):
            est.sample(0.01)
        assert est.rto == 1.0

    def test_max_rto_ceiling(self):
        est = RTOEstimator(min_rto=0.2, max_rto=5.0)
        est.sample(100.0)
        assert est.rto == 5.0

    def test_negative_sample_ignored(self):
        est = RTOEstimator()
        est.sample(0.1)
        before = est.srtt
        est.sample(-0.5)
        assert est.srtt == before


class TestBackoff:
    def test_backoff_doubles(self):
        est = RTOEstimator(min_rto=0.2, max_rto=120.0)
        est.sample(0.5)
        base = est.rto
        est.backoff()
        assert est.rto == pytest.approx(2 * base)
        est.backoff()
        assert est.rto == pytest.approx(4 * base)

    def test_backoff_capped_by_max_rto(self):
        est = RTOEstimator(min_rto=0.2, max_rto=3.0)
        est.sample(1.0)
        for _ in range(10):
            est.backoff()
        assert est.rto == 3.0

    def test_backoff_multiplier_capped(self):
        est = RTOEstimator()
        for _ in range(20):
            est.backoff()
        assert est.backoff_multiplier == 64

    def test_new_sample_clears_backoff(self):
        est = RTOEstimator(min_rto=0.2)
        est.sample(0.5)
        est.backoff()
        est.sample(0.5)
        assert est.backoff_multiplier == 1

    def test_reset_backoff(self):
        est = RTOEstimator()
        est.backoff()
        est.reset_backoff()
        assert est.backoff_multiplier == 1
