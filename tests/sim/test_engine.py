"""The discrete-event engine."""

import pytest

from repro.sim.engine import Simulator
from repro.util.errors import SimulationError


@pytest.fixture(params=["heap", "calendar"])
def sim(request) -> Simulator:
    """Every engine contract must hold on both scheduler backends."""
    return Simulator(scheduler=request.param)


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_events_fire_in_time_order(self, sim):
        order = []
        sim.schedule(2.0, order.append, "b")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(3.0, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self, sim):
        order = []
        for tag in range(5):
            sim.schedule(1.0, order.append, tag)
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_schedule_at_absolute(self, sim):
        seen = []
        sim.schedule_at(4.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [4.0]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_into_past_rejected(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_zero_delay_allowed(self, sim):
        order = []
        sim.schedule(1.0, lambda: sim.schedule(0.0, order.append, "nested"))
        sim.schedule(1.0, order.append, "direct")
        sim.run()
        # The zero-delay event fires after already-queued same-time events.
        assert order == ["direct", "nested"]

    def test_events_scheduled_during_run(self, sim):
        order = []

        def chain(n):
            order.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(1.0, chain, 0)
        sim.run()
        assert order == [0, 1, 2, 3]
        assert sim.now == 4.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()

    def test_cancel_after_firing_is_safe(self, sim):
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        event.cancel()

    def test_cancelled_events_not_counted(self, sim):
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        event.cancel()
        executed = sim.run()
        assert executed == 1
        assert sim.events_executed == 1


class TestRunControl:
    def test_until_bounds_execution(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(5.0, fired.append, 5)
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0  # clock advances to the horizon

    def test_event_exactly_at_until_fires(self, sim):
        fired = []
        sim.schedule(2.0, fired.append, "edge")
        sim.run(until=2.0)
        assert fired == ["edge"]

    def test_remaining_events_fire_on_next_run(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(5.0, fired.append, 5)
        sim.run(until=2.0)
        sim.run(until=10.0)
        assert fired == [1, 5]

    def test_clock_advances_to_horizon_when_drained(self, sim):
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_max_events_guards_runaway(self, sim):
        def forever():
            sim.schedule(0.001, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(until=100.0, max_events=50)

    def test_max_events_stops_before_dispatching_the_excess_event(self, sim):
        # The budget is checked before dispatch: exactly max_events
        # events execute, never max_events + 1.
        fired = []
        for i in range(10):
            sim.schedule(0.1 * (i + 1), fired.append, i)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=5)
        assert fired == [0, 1, 2, 3, 4]
        assert sim.events_executed == 5

    def test_max_events_budget_exactly_sufficient(self, sim):
        # A heap holding exactly max_events events drains cleanly.
        for i in range(5):
            sim.schedule(0.1 * (i + 1), lambda: None)
        assert sim.run(max_events=5) == 5

    def test_cancelled_events_do_not_consume_the_budget(self, sim):
        fired = []
        events = [
            sim.schedule(0.1 * (i + 1), fired.append, i) for i in range(4)
        ]
        events[1].cancel()
        events[2].cancel()
        assert sim.run(max_events=2) == 2
        assert fired == [0, 3]

    def test_stop_halts_immediately(self, sim):
        fired = []

        def first():
            fired.append(1)
            sim.stop()

        sim.schedule(1.0, first)
        sim.schedule(2.0, fired.append, 2)
        sim.run()
        assert fired == [1]

    def test_run_not_reentrant(self, sim):
        def try_nested():
            with pytest.raises(SimulationError):
                sim.run()

        sim.schedule(1.0, try_nested)
        sim.run()

    def test_pending_events_counter(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending_events == 2
        sim.run(until=1.5)
        assert sim.pending_events == 1
