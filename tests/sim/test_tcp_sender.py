"""TCP sender: window growth, fast retransmit/recovery, timeouts."""

import pytest

from repro.sim.tcp import AIMDParams, TCPConfig, TCPVariant

from tests.sim.tcp_harness import TCPHarness


def make_config(**overrides):
    params = dict(
        variant=TCPVariant.NEWRENO,
        delayed_ack=1,
        min_rto=0.2,
        initial_rto=0.3,
        initial_cwnd=2.0,
        initial_ssthresh=32.0,
    )
    params.update(overrides)
    return TCPConfig(**params)


class TestLosslessTransfer:
    def test_all_segments_delivered_in_order(self):
        h = TCPHarness(make_config())
        h.start()
        h.run(5.0)
        assert h.sender.acked_segments > 0
        assert h.receiver.cumack == h.sender.cumack
        assert h.sender.retransmissions == 0
        assert h.sender.timeouts == 0

    def test_slow_start_doubles_per_rtt(self):
        h = TCPHarness(make_config(initial_ssthresh=1000.0))
        h.start()
        h.run(10 * h.rtt + 0.01)
        # cwnd grows by 1 per ACK while below ssthresh: ~2^(n+1) after n RTTs.
        assert h.sender.cwnd > 100

    def test_congestion_avoidance_linear(self):
        h = TCPHarness(make_config(initial_cwnd=10.0, initial_ssthresh=10.0))
        h.start()
        h.run(10 * h.rtt + 0.01)
        # +1 MSS per RTT from 10 over ~10 RTTs.
        assert h.sender.cwnd == pytest.approx(20.0, abs=2.5)

    def test_custom_aimd_increase(self):
        slow = TCPHarness(make_config(initial_cwnd=10.0, initial_ssthresh=10.0,
                                      aimd=AIMDParams(0.5, 0.5)))
        slow.start()
        slow.run(10 * slow.rtt + 0.01)
        assert slow.sender.cwnd == pytest.approx(15.0, abs=2.0)

    def test_max_cwnd_caps_window(self):
        h = TCPHarness(make_config(max_cwnd=16.0, initial_ssthresh=1000.0))
        h.start()
        h.run(20 * h.rtt)
        assert h.sender.cwnd <= 16.0

    def test_goodput_matches_acked_segments(self):
        h = TCPHarness(make_config())
        h.start()
        h.run(3.0)
        assert h.sender.goodput_bytes() == (
            h.sender.acked_segments * h.config.mss
        )

    def test_inflight_bounded_by_window(self):
        h = TCPHarness(make_config(max_cwnd=20.0))
        h.start()
        h.run(5.0)
        assert h.sender.inflight <= 20


class TestFastRetransmit:
    def test_triple_dupack_triggers_fast_retransmit(self):
        h = TCPHarness(make_config(initial_cwnd=10.0))
        h.drop_seqs({5})
        h.start()
        h.run(2.0)
        assert h.sender.fast_retransmits == 1
        assert h.sender.timeouts == 0
        assert h.sender.cumack >= 5  # the hole was repaired

    def test_window_halves_after_recovery(self):
        h = TCPHarness(make_config(initial_cwnd=16.0, initial_ssthresh=16.0))
        h.drop_seqs({20})
        h.start()
        h.run(3.0)
        # After recovery cwnd restarts from about b * W = 8-ish and grows
        # linearly; it must sit well below the unthrottled trajectory.
        assert h.sender.fast_retransmits == 1
        assert h.sender.ssthresh < 16.0 + 3

    def test_recovery_event_recorded(self):
        h = TCPHarness(make_config(initial_cwnd=10.0))
        h.drop_seqs({5})
        h.start()
        h.run(2.0)
        kinds = [kind for _, kind in h.sender.recovery_events]
        assert kinds == ["fr"]

    def test_custom_decrease_factor(self):
        h = TCPHarness(make_config(
            initial_cwnd=20.0, initial_ssthresh=20.0,
            aimd=AIMDParams(1.0, 0.8),
        ))
        h.drop_seqs({30})
        h.start()
        h.run(3.0)
        # ssthresh = b * cwnd-at-loss; with b = 0.8 it stays >= 16.
        assert h.sender.ssthresh >= 0.8 * 20.0 - 2.0

    def test_newreno_multiple_losses_single_recovery(self):
        h = TCPHarness(make_config(initial_cwnd=12.0, variant=TCPVariant.NEWRENO))
        h.drop_seqs({6, 8, 10})
        h.start()
        h.run(3.0)
        # NewReno repairs all three holes within one FR episode.
        assert h.sender.fast_retransmits == 1
        assert h.sender.timeouts == 0
        assert h.sender.cumack > 10

    def test_reno_exits_recovery_on_first_new_ack(self):
        h = TCPHarness(make_config(initial_cwnd=12.0, variant=TCPVariant.RENO))
        h.drop_seqs({6})
        h.start()
        h.run(2.0)
        assert h.sender.fast_retransmits == 1
        assert not h.sender.in_fast_recovery

    def test_tahoe_collapses_to_one(self):
        h = TCPHarness(make_config(initial_cwnd=12.0, variant=TCPVariant.TAHOE))
        h.drop_seqs({6})
        h.start()

        cwnd_after_loss = []
        original = h.sender._enter_fast_retransmit

        def spy():
            original()
            cwnd_after_loss.append(h.sender.cwnd)

        h.sender._enter_fast_retransmit = spy
        h.run(2.0)
        assert cwnd_after_loss == [1.0]
        assert h.sender.fast_retransmits == 1


class TestTimeout:
    def test_full_window_loss_times_out(self):
        h = TCPHarness(make_config(initial_cwnd=4.0))
        h.drop_seqs({0, 1, 2, 3})  # nothing gets through: no dup ACKs
        h.start()
        h.run(5.0)
        assert h.sender.timeouts >= 1
        assert h.sender.cumack >= 3  # eventually repaired via RTO

    def test_timeout_resets_cwnd_to_one(self):
        h = TCPHarness(make_config(initial_cwnd=8.0))
        h.drop_seqs({0, 1, 2, 3, 4, 5, 6, 7})
        h.start()
        # initial_rto = 0.3: stop just after the first expiry, before the
        # retransmission's ACK (one-way delay 0.05) restarts slow start.
        h.run(0.31)
        assert h.sender.timeouts == 1
        assert h.sender.cwnd == 1.0

    def test_rto_backoff_on_repeated_loss(self):
        h = TCPHarness(make_config(initial_cwnd=2.0))
        # Drop first transmissions AND the first two retransmissions of 0.
        drops = {"remaining": 3}

        def drop(packet):
            if packet.seq == 0 and drops["remaining"] > 0:
                drops["remaining"] -= 1
                return True
            return packet.seq == 1 and not packet.retransmit

        h.sender_node.drop_filter = drop
        h.start()
        h.run(10.0)
        assert h.sender.timeouts >= 2
        assert h.sender.cumack > 0  # recovered in the end

    def test_transfer_resumes_after_timeout(self):
        h = TCPHarness(make_config(initial_cwnd=4.0))
        h.drop_seqs({0, 1, 2, 3})
        h.start()
        h.run(8.0)
        assert h.sender.acked_segments > 100


class TestRTTSampling:
    def test_srtt_close_to_path_rtt(self):
        h = TCPHarness(make_config(), one_way=0.1)
        h.start()
        h.run(3.0)
        assert h.sender.rto_estimator.srtt == pytest.approx(0.2, abs=0.02)

    def test_no_samples_from_retransmissions(self):
        h = TCPHarness(make_config(initial_cwnd=4.0), one_way=0.1)
        h.drop_seqs({0, 1, 2, 3})
        h.start()
        h.run(1.0)
        # Only retransmitted data so far; Karn forbids sampling it.
        srtt = h.sender.rto_estimator.srtt
        assert srtt is None or srtt == pytest.approx(0.2, abs=0.05)
