"""Rate/drop/queue tracing instruments."""

import numpy as np
import pytest

from repro.sim.link import Link
from repro.sim.node import Node
from repro.sim.packet import Packet, PacketKind
from repro.sim.queues import DropTailQueue
from repro.sim.trace import DropMonitor, QueueSampler, RateMonitor


def make_packet(kind=PacketKind.DATA, size=1000.0, flow_id=0):
    return Packet(kind, flow_id=flow_id, src=0, dst=1, size_bytes=size)


class TestRateMonitor:
    def test_bins_bytes_by_time(self):
        monitor = RateMonitor(bin_width=1.0, horizon=5.0)
        monitor.observe(make_packet(size=100), 0.5, True)
        monitor.observe(make_packet(size=200), 0.7, True)
        monitor.observe(make_packet(size=300), 3.2, True)
        assert list(monitor.bytes_per_bin) == [300.0, 0.0, 0.0, 300.0, 0.0]

    def test_attack_bytes_separated(self):
        monitor = RateMonitor(bin_width=1.0, horizon=2.0)
        monitor.observe(make_packet(size=100), 0.1, True)
        monitor.observe(make_packet(PacketKind.ATTACK, size=500), 0.2, True)
        assert monitor.attack_bytes_per_bin[0] == 500.0
        assert monitor.legit_bytes_per_bin[0] == 100.0

    def test_counts_dropped_by_default(self):
        monitor = RateMonitor(bin_width=1.0, horizon=1.0)
        monitor.observe(make_packet(size=100), 0.1, False)
        assert monitor.bytes_per_bin[0] == 100.0

    def test_carried_load_mode(self):
        monitor = RateMonitor(bin_width=1.0, horizon=1.0, count_dropped=False)
        monitor.observe(make_packet(size=100), 0.1, False)
        monitor.observe(make_packet(size=100), 0.2, True)
        assert monitor.bytes_per_bin[0] == 100.0

    def test_out_of_horizon_ignored(self):
        monitor = RateMonitor(bin_width=1.0, horizon=2.0)
        monitor.observe(make_packet(size=100), 5.0, True)
        monitor.observe(make_packet(size=100), -1.0, True)
        assert monitor.bytes_per_bin.sum() == 0.0

    def test_rate_bps_conversion(self):
        monitor = RateMonitor(bin_width=0.5, horizon=1.0)
        monitor.observe(make_packet(size=1000), 0.1, True)
        assert monitor.rate_bps()[0] == pytest.approx(16_000.0)

    def test_times_are_bin_centres(self):
        monitor = RateMonitor(bin_width=1.0, horizon=3.0)
        assert list(monitor.times) == [0.5, 1.5, 2.5]


class TestDropMonitor:
    def test_records_only_drops(self):
        monitor = DropMonitor()
        monitor.observe(make_packet(), 1.0, True)
        monitor.observe(make_packet(flow_id=3), 2.0, False)
        assert monitor.total_drops == 1
        assert monitor.records[0] == (2.0, 3, False)

    def test_attack_vs_legit_split(self):
        monitor = DropMonitor()
        monitor.observe(make_packet(PacketKind.ATTACK), 1.0, False)
        monitor.observe(make_packet(PacketKind.DATA), 2.0, False)
        assert monitor.attack_drops == 1
        assert monitor.legit_drops == 1

    def test_counters_stay_consistent_mid_run(self):
        """The O(1) running counters agree with the records at any point."""
        monitor = DropMonitor()
        kinds = [PacketKind.ATTACK, PacketKind.DATA, PacketKind.ATTACK,
                 PacketKind.ACK, PacketKind.ATTACK, PacketKind.CBR]
        for i, kind in enumerate(kinds):
            monitor.observe(make_packet(kind), float(i), False)
            expected_attack = sum(
                1 for _, _, is_attack in monitor.records if is_attack
            )
            assert monitor.attack_drops == expected_attack
            assert monitor.legit_drops == monitor.total_drops - expected_attack

    def test_drop_times_filter(self):
        monitor = DropMonitor()
        monitor.observe(make_packet(PacketKind.ATTACK), 1.0, False)
        monitor.observe(make_packet(PacketKind.DATA), 2.0, False)
        assert list(monitor.drop_times(legit_only=True)) == [2.0]
        assert list(monitor.drop_times()) == [1.0, 2.0]


class TestQueueSampler:
    def test_periodic_samples(self, sim):
        a, b = Node(sim, 0), Node(sim, 1)
        link = Link(sim, a, b, rate_bps=1e4, delay=0.0,
                    queue=DropTailQueue(100_000))
        b.register_agent(0, lambda p: None)
        sampler = QueueSampler(link, interval=0.1, horizon=1.0)
        sampler.start()
        # Three packets: at 10 kb/s a 1000 B packet takes 0.8 s to send.
        for _ in range(3):
            link.send(make_packet(size=1000))
        sim.run(until=1.1)
        times, qbytes, qpkts = sampler.as_arrays()
        assert len(times) >= 10
        # The t=0 sample was taken before the sends; from t=0.1 on all
        # three are buffered (the first departs at 0.8 s).
        assert qpkts[1] == 3
        assert qpkts[-1] <= 2      # some drained by t = 1

    def test_empty_sampler(self, sim):
        a, b = Node(sim, 0), Node(sim, 1)
        link = Link(sim, a, b, 1e6, 0.0)
        sampler = QueueSampler(link)
        times, qbytes, qpkts = sampler.as_arrays()
        assert len(times) == 0
