"""The CHOKe queue discipline and the link's buffer-tracking support."""

import random

import pytest

from repro.sim.engine import Simulator
from repro.sim.link import BufferedPacket, Link
from repro.sim.node import Node
from repro.sim.packet import Packet, PacketKind
from repro.sim.queues import CHOKeQueue


def make_choke(**overrides):
    params = dict(
        capacity_bytes=100 * 1500.0,
        min_th=5.0,
        max_th=80.0,
        max_p=0.1,
        w_q=0.02,
        rng=random.Random(4),
    )
    params.update(overrides)
    return CHOKeQueue(**params)


def make_packet(flow_id, size=1500.0):
    return Packet(PacketKind.DATA, flow_id=flow_id, src=0, dst=1,
                  size_bytes=size)


@pytest.fixture
def choke_wire(sim):
    """A slow link with a CHOKe queue; arrivals recorded per flow."""
    a, b = Node(sim, 0), Node(sim, 1)
    queue = make_choke()
    link = Link(sim, a, b, rate_bps=1e6, delay=0.001, queue=queue)
    arrivals = []
    for flow in range(5):
        b.register_agent(flow, arrivals.append)
    return link, queue, arrivals


class TestMatchAndDrop:
    def test_single_flow_burst_self_matches(self, sim, choke_wire):
        link, queue, arrivals = choke_wire
        # Push the average past min_th, then keep bursting one flow.
        for _ in range(60):
            link.send(make_packet(flow_id=0))
        sim.run()
        assert queue.match_drops > 0
        assert queue.evictions == queue.match_drops
        # Packets still flow (CHOKe punishes, it does not blackhole).
        assert len(arrivals) > 0

    def test_mixed_flows_match_less(self, sim):
        """Self-match probability falls with flow diversity."""
        results = {}
        for label, flows in (("single", [0] * 60), ("mixed", list(range(5)) * 12)):
            local = Simulator()
            a, b = Node(local, 0), Node(local, 1)
            queue = make_choke(rng=random.Random(9))
            link = Link(local, a, b, rate_bps=1e6, delay=0.001, queue=queue)
            for flow in range(5):
                b.register_agent(flow, lambda p: None)
            for flow_id in flows:
                link.send(make_packet(flow_id))
            local.run()
            results[label] = queue.match_drops
        assert results["single"] > results["mixed"]

    def test_below_min_th_no_matching(self, sim, choke_wire):
        link, queue, _ = choke_wire
        link.send(make_packet(0))
        link.send(make_packet(0))
        assert queue.match_drops == 0

    def test_conservation(self, sim, choke_wire):
        """Sent + dropped == offered, with evictions counted as drops."""
        link, queue, arrivals = choke_wire
        offered = 80
        for _ in range(offered):
            link.send(make_packet(flow_id=0))
        sim.run()
        assert len(arrivals) + link.packets_dropped == offered


class TestSlotReclamation:
    def test_eviction_advances_later_departures(self, sim):
        a, b = Node(sim, 0), Node(sim, 1)
        queue = make_choke()
        link = Link(sim, a, b, rate_bps=1.2e4, delay=0.0, queue=queue)
        received = []
        b.register_agent(0, lambda p: received.append((sim.now, p)))
        b.register_agent(1, lambda p: received.append((sim.now, p)))
        # Three packets back to back: 1 s serialization each.
        for flow in (0, 0, 1):
            link.send(make_packet(flow, size=1500.0))
        # Evict the middle (waiting) packet directly.
        entry = link.sample_buffered(random.Random(0))
        assert isinstance(entry, BufferedPacket)
        victim = link._departures[1]
        link.evict(victim)
        sim.run()
        # Two deliveries remain, and the last lands a full slot earlier
        # (at 2 s instead of 3 s).
        assert len(received) == 2
        assert received[-1][0] == pytest.approx(2.0)

    def test_evicted_packet_never_delivered(self, sim):
        a, b = Node(sim, 0), Node(sim, 1)
        queue = make_choke()
        link = Link(sim, a, b, rate_bps=1.2e4, delay=0.0, queue=queue)
        received = []
        b.register_agent(0, lambda p: received.append(p.uid))
        packets = [make_packet(0) for _ in range(3)]
        for packet in packets:
            link.send(packet)
        victim = link._departures[1]
        victim_uid = victim.packet.uid
        link.evict(victim)
        sim.run()
        assert victim_uid not in received

    def test_double_evict_is_safe(self, sim):
        a, b = Node(sim, 0), Node(sim, 1)
        queue = make_choke()
        link = Link(sim, a, b, rate_bps=1.2e4, delay=0.0, queue=queue)
        b.register_agent(0, lambda p: None)
        for _ in range(3):
            link.send(make_packet(0))
        victim = link._departures[1]
        link.evict(victim)
        before = link.packets_dropped
        link.evict(victim)  # second call: no-op
        assert link.packets_dropped == before

    def test_sample_excludes_in_service_head(self, sim):
        a, b = Node(sim, 0), Node(sim, 1)
        queue = make_choke()
        link = Link(sim, a, b, rate_bps=1.2e4, delay=0.0, queue=queue)
        b.register_agent(0, lambda p: None)
        link.send(make_packet(0))
        # Only the in-service packet is buffered: nothing to sample.
        assert link.sample_buffered(random.Random(0)) is None

    def test_untracked_link_returns_none(self, sim):
        from repro.sim.queues import DropTailQueue

        a, b = Node(sim, 0), Node(sim, 1)
        link = Link(sim, a, b, 1e6, 0.0, DropTailQueue(100_000))
        b.register_agent(0, lambda p: None)
        link.send(make_packet(0))
        link.send(make_packet(0))
        assert link.sample_buffered(random.Random(0)) is None
