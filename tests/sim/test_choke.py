"""The CHOKe queue discipline and the link's buffer-tracking support."""

import random

import pytest

from repro.sim.engine import Simulator
from repro.sim.link import BufferedPacket, Link
from repro.sim.node import Node
from repro.sim.packet import Packet, PacketKind
from repro.sim.queues import CHOKeQueue


def make_choke(**overrides):
    params = dict(
        capacity_bytes=100 * 1500.0,
        min_th=5.0,
        max_th=80.0,
        max_p=0.1,
        w_q=0.02,
        rng=random.Random(4),
    )
    params.update(overrides)
    return CHOKeQueue(**params)


def make_packet(flow_id, size=1500.0):
    return Packet(PacketKind.DATA, flow_id=flow_id, src=0, dst=1,
                  size_bytes=size)


@pytest.fixture
def choke_wire(sim):
    """A slow link with a CHOKe queue; arrivals recorded per flow."""
    a, b = Node(sim, 0), Node(sim, 1)
    queue = make_choke()
    link = Link(sim, a, b, rate_bps=1e6, delay=0.001, queue=queue)
    arrivals = []
    for flow in range(5):
        b.register_agent(flow, arrivals.append)
    return link, queue, arrivals


class TestMatchAndDrop:
    def test_single_flow_burst_self_matches(self, sim, choke_wire):
        link, queue, arrivals = choke_wire
        # Push the average past min_th, then keep bursting one flow.
        for _ in range(60):
            link.send(make_packet(flow_id=0))
        sim.run()
        assert queue.match_drops > 0
        assert queue.evictions == queue.match_drops
        # Packets still flow (CHOKe punishes, it does not blackhole).
        assert len(arrivals) > 0

    def test_mixed_flows_match_less(self, sim):
        """Self-match probability falls with flow diversity."""
        results = {}
        for label, flows in (("single", [0] * 60), ("mixed", list(range(5)) * 12)):
            local = Simulator()
            a, b = Node(local, 0), Node(local, 1)
            queue = make_choke(rng=random.Random(9))
            link = Link(local, a, b, rate_bps=1e6, delay=0.001, queue=queue)
            for flow in range(5):
                b.register_agent(flow, lambda p: None)
            for flow_id in flows:
                link.send(make_packet(flow_id))
            local.run()
            results[label] = queue.match_drops
        assert results["single"] > results["mixed"]

    def test_below_min_th_no_matching(self, sim, choke_wire):
        link, queue, _ = choke_wire
        link.send(make_packet(0))
        link.send(make_packet(0))
        assert queue.match_drops == 0

    def test_conservation(self, sim, choke_wire):
        """Sent + dropped == offered, with evictions counted as drops."""
        link, queue, arrivals = choke_wire
        offered = 80
        for _ in range(offered):
            link.send(make_packet(flow_id=0))
        sim.run()
        assert len(arrivals) + link.packets_dropped == offered


class TestSlotReclamation:
    def test_eviction_advances_later_departures(self, sim):
        a, b = Node(sim, 0), Node(sim, 1)
        queue = make_choke()
        link = Link(sim, a, b, rate_bps=1.2e4, delay=0.0, queue=queue)
        received = []
        b.register_agent(0, lambda p: received.append((sim.now, p)))
        b.register_agent(1, lambda p: received.append((sim.now, p)))
        # Three packets back to back: 1 s serialization each.
        for flow in (0, 0, 1):
            link.send(make_packet(flow, size=1500.0))
        # Evict the middle (waiting) packet directly.
        entry = link.sample_buffered(random.Random(0))
        assert isinstance(entry, BufferedPacket)
        victim = link._departures[1]
        link.evict(victim)
        sim.run()
        # Two deliveries remain, and the last lands a full slot earlier
        # (at 2 s instead of 3 s).
        assert len(received) == 2
        assert received[-1][0] == pytest.approx(2.0)

    def test_evicted_packet_never_delivered(self, sim):
        a, b = Node(sim, 0), Node(sim, 1)
        queue = make_choke()
        link = Link(sim, a, b, rate_bps=1.2e4, delay=0.0, queue=queue)
        received = []
        b.register_agent(0, lambda p: received.append(p.uid))
        packets = [make_packet(0) for _ in range(3)]
        for packet in packets:
            link.send(packet)
        victim = link._departures[1]
        victim_uid = victim.packet.uid
        link.evict(victim)
        sim.run()
        assert victim_uid not in received

    def test_double_evict_is_safe(self, sim):
        a, b = Node(sim, 0), Node(sim, 1)
        queue = make_choke()
        link = Link(sim, a, b, rate_bps=1.2e4, delay=0.0, queue=queue)
        b.register_agent(0, lambda p: None)
        for _ in range(3):
            link.send(make_packet(0))
        victim = link._departures[1]
        link.evict(victim)
        before = link.packets_dropped
        link.evict(victim)  # second call: no-op
        assert link.packets_dropped == before

    def test_sample_excludes_in_service_head(self, sim):
        a, b = Node(sim, 0), Node(sim, 1)
        queue = make_choke()
        link = Link(sim, a, b, rate_bps=1.2e4, delay=0.0, queue=queue)
        b.register_agent(0, lambda p: None)
        link.send(make_packet(0))
        # Only the in-service packet is buffered: nothing to sample.
        assert link.sample_buffered(random.Random(0)) is None

    def test_untracked_link_returns_none(self, sim):
        from repro.sim.queues import DropTailQueue

        a, b = Node(sim, 0), Node(sim, 1)
        link = Link(sim, a, b, 1e6, 0.0, DropTailQueue(100_000))
        b.register_agent(0, lambda p: None)
        link.send(make_packet(0))
        link.send(make_packet(0))
        assert link.sample_buffered(random.Random(0)) is None


class TestEvictRescheduling:
    """Evict must reclaim the slot and reschedule every trailing delivery."""

    def _wire(self, sim, n_packets):
        """1.2 kB/s link (1 s per 1500 B packet), zero delay, n packets."""
        a, b = Node(sim, 0), Node(sim, 1)
        queue = make_choke()
        link = Link(sim, a, b, rate_bps=1.2e4, delay=0.0, queue=queue)
        received = []
        b.register_agent(0, lambda p: received.append((sim.now, p.uid)))
        packets = [make_packet(0) for _ in range(n_packets)]
        for packet in packets:
            link.send(packet)
        return link, packets, received

    def test_all_trailing_deliveries_reschedule(self, sim):
        link, packets, received = self._wire(sim, 5)
        link.evict(link._departures[1])
        sim.run()
        # Slots: head at 1 s, then the three survivors back to back.
        times = [t for t, _ in received]
        assert times == pytest.approx([1.0, 2.0, 3.0, 4.0])
        # FIFO order of the survivors is preserved.
        survivor_uids = [p.uid for i, p in enumerate(packets) if i != 1]
        assert [uid for _, uid in received] == survivor_uids

    def test_departure_list_slots_shift_by_one_tx(self, sim):
        link, _, _ = self._wire(sim, 5)
        victim = link._departures[2]
        before = [entry.departure for entry in link._departures]
        reclaimed = link.transmission_time(victim.size_bytes)
        link.evict(victim)
        after = [entry.departure for entry in link._departures]
        # Entries ahead of the victim are untouched; trailing ones move
        # exactly one serialization time earlier.
        assert after[:2] == before[:2]
        assert after[2:] == pytest.approx([t - reclaimed for t in before[3:]])

    def test_busy_until_reclaimed(self, sim):
        link, _, _ = self._wire(sim, 4)
        busy_before = link._busy_until
        victim = link._departures[1]
        reclaimed = link.transmission_time(victim.size_bytes)
        link.evict(victim)
        assert link._busy_until == pytest.approx(busy_before - reclaimed)

    def test_byte_accounting_consistent(self, sim):
        link, packets, received = self._wire(sim, 5)
        offered_bytes = sum(p.size_bytes for p in packets)
        victim = link._departures[1]
        victim_bytes = victim.size_bytes
        sent_before = link.bytes_sent
        dropped_before = link.bytes_dropped
        link.evict(victim)
        # The evicted packet moves from the sent ledger to the drop ledger.
        assert link.bytes_sent == pytest.approx(sent_before - victim_bytes)
        assert link.bytes_dropped == pytest.approx(dropped_before + victim_bytes)
        sim.run()
        # Conservation: every offered byte is either sent or dropped, and
        # the sent ledger matches what actually arrived.
        assert link.bytes_sent + link.bytes_dropped == pytest.approx(offered_bytes)
        assert link.packets_sent == len(received)
        assert link.packets_sent + link.packets_dropped == len(packets)

    def test_queued_bytes_reduced(self, sim):
        link, _, _ = self._wire(sim, 5)
        victim = link._departures[1]
        queued_before = link._queued_bytes
        link.evict(victim)
        assert link._queued_bytes == pytest.approx(
            queued_before - victim.size_bytes
        )

    def test_evict_after_departure_is_noop(self, sim):
        link, _, received = self._wire(sim, 2)
        head = link._departures[0]
        sim.run()  # both packets delivered; departure list drains lazily
        sent_before = link.bytes_sent
        link.evict(head)  # stale handle: already departed
        assert link.bytes_sent == sent_before
        assert len(received) == 2
