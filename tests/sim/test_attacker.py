"""Pulse-train and CBR traffic sources."""

import pytest

from repro.core.attack import PulseTrain
from repro.sim.attacker import CBRSource, PulseAttackSource
from repro.sim.node import Node


class Sink:
    """Records packet arrival times on a node agent."""

    def __init__(self):
        self.arrivals = []

    def __call__(self, packet):
        self.arrivals.append(packet)


@pytest.fixture
def direct(sim):
    """Two directly linked nodes with a fast, lossless wire."""
    from repro.sim.link import Link
    from repro.sim.queues import DropTailQueue

    a, b = Node(sim, 0), Node(sim, 1)
    Link(sim, a, b, rate_bps=1e9, delay=0.001,
         queue=DropTailQueue(100_000_000))
    sink = Sink()
    b.register_agent(9, sink)
    return a, b, sink


class TestPulseAttackSource:
    def test_packet_count_matches_pulse_budget(self, sim, direct):
        a, _b, sink = direct
        # 10 Mb/s for 100 ms = 1 Mbit ~= 83 x 1500 B packets per pulse.
        train = PulseTrain.uniform(0.1, 10e6, 0.4, n_pulses=3)
        source = PulseAttackSource(sim, a, 9, 1, train, packet_bytes=1500.0)
        source.start()
        sim.run()
        expected_per_pulse = 10e6 * 0.1 / (1500 * 8)
        assert source.pulses_emitted == 3
        assert source.packets_emitted == pytest.approx(
            3 * expected_per_pulse, rel=0.05
        )
        assert len(sink.arrivals) == source.packets_emitted

    def test_pulse_timing_respects_spacing(self, sim, direct):
        a, _b, sink = direct
        train = PulseTrain.uniform(0.05, 8e6, 0.95, n_pulses=2)
        PulseAttackSource(sim, a, 9, 1, train, start_time=2.0).start()
        sim.run()
        times = [p.sent_at for p in sink.arrivals]
        first_pulse = [t for t in times if t < 2.5]
        second_pulse = [t for t in times if t >= 2.5]
        assert min(first_pulse) == pytest.approx(2.0)
        assert max(first_pulse) <= 2.05 + 1e-9
        assert min(second_pulse) == pytest.approx(3.0)

    def test_packets_evenly_spaced_at_rate(self, sim, direct):
        a, _b, sink = direct
        train = PulseTrain.uniform(0.012, 1e6, 0.1, n_pulses=1)
        PulseAttackSource(sim, a, 9, 1, train, packet_bytes=1500.0).start()
        sim.run()
        times = sorted(p.sent_at for p in sink.arrivals)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g == pytest.approx(0.012) for g in gaps)

    def test_pulse_index_stamped(self, sim, direct):
        a, _b, sink = direct
        train = PulseTrain.uniform(0.01, 8e6, 0.02, n_pulses=3)
        PulseAttackSource(sim, a, 9, 1, train).start()
        sim.run()
        assert {p.seq for p in sink.arrivals} == {0, 1, 2}

    def test_start_idempotent(self, sim, direct):
        a, _b, sink = direct
        train = PulseTrain.uniform(0.01, 8e6, 0.02, n_pulses=1)
        source = PulseAttackSource(sim, a, 9, 1, train)
        source.start()
        source.start()
        sim.run()
        assert source.pulses_emitted == 1

    def test_attack_packets_flagged(self, sim, direct):
        a, _b, sink = direct
        train = PulseTrain.uniform(0.01, 8e6, 0.0, n_pulses=1)
        PulseAttackSource(sim, a, 9, 1, train).start()
        sim.run()
        assert all(p.is_attack for p in sink.arrivals)


class TestCBRSource:
    def test_steady_rate(self, sim, direct):
        a, _b, sink = direct
        source = CBRSource(sim, a, 9, 1, rate_bps=1e6, packet_bytes=1000.0,
                           stop_time=1.0)
        source.start()
        sim.run(until=2.0)
        # 1 Mb/s for 1 s = 125 packets of 1000 B.
        assert source.packets_emitted == pytest.approx(125, abs=2)

    def test_start_and_stop_window(self, sim, direct):
        a, _b, sink = direct
        CBRSource(sim, a, 9, 1, rate_bps=1e6, start_time=0.5,
                  stop_time=0.6).start()
        sim.run(until=1.0)
        times = [p.sent_at for p in sink.arrivals]
        assert min(times) >= 0.5
        assert max(times) < 0.6
