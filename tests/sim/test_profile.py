"""The profiling instrumentation (repro.sim.profile)."""

from repro.sim.engine import Simulator, total_events_dispatched
from repro.sim.profile import ProfileReport, profile_run


def _tiny_workload():
    sim = Simulator()
    fired = []
    for i in range(50):
        sim.schedule(0.01 * i, fired.append, i)
    sim.run()
    return fired


class TestProfileRun:
    def test_passes_result_through(self):
        result, report = profile_run(_tiny_workload, label="tiny")
        assert result == list(range(50))
        assert isinstance(report, ProfileReport)

    def test_counts_dispatched_events(self):
        _, report = profile_run(_tiny_workload)
        assert report.events_executed == 50

    def test_global_counter_advances(self):
        before = total_events_dispatched()
        _tiny_workload()
        assert total_events_dispatched() - before == 50

    def test_does_not_alter_results(self):
        plain = _tiny_workload()
        profiled, _ = profile_run(_tiny_workload)
        assert profiled == plain

    def test_render_includes_throughput_and_hotspots(self):
        _, report = profile_run(_tiny_workload, label="tiny")
        text = report.render()
        assert "profile: tiny" in text
        assert "events executed  : 50" in text
        assert "events/sec" in text
        assert "cumulative" in text  # pstats header of the hotspot table

    def test_events_per_sec_zero_guard(self):
        report = ProfileReport(
            label="x", wall_seconds=0.0, events_executed=10,
            calls_profiled=1, top_functions="",
        )
        assert report.events_per_sec == 0.0


class TestCLIFlag:
    def test_profile_flag_parses(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["fig04", "--profile"])
        assert args.profile

    def test_profile_flag_defaults_off(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["fig04"])
        assert not args.profile

    def test_profiled_run_appends_report(self, capsys):
        from repro.cli import main
        assert main(["fig04", "--profile", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "risk" in out  # the experiment rendering is still there
        assert "=== profile: fig04 ===" in out
        assert "events/sec" in out
