"""Warm-start checkpointing: snapshot/fork determinism at the sim layer.

The load-bearing property is *bit-identity*: a network forked from a
:class:`~repro.sim.checkpoint.NetworkSnapshot` must evolve exactly like
the original network continuing from the same point -- same goodput,
same drop counts, same packet uid streams, same RNG draws -- across
every queue discipline and TCP variant the experiments use.
"""

import pytest

from repro.core.attack import PulseTrain
from repro.sim import NetworkSnapshot, Packet
from repro.sim.tcp import TCPConfig, TCPVariant
from repro.sim.topology import DumbbellConfig, QUEUE_FACTORIES, build_dumbbell
from repro.testbed.dummynet import TestbedConfig, build_testbed
from repro.util.errors import SimulationError
from repro.util.units import mbps, ms


def make_train(rate=mbps(60), pulses=3):
    return PulseTrain(
        extents=[0.1] * pulses,
        rates_bps=[rate] * pulses,
        spaces=[0.9] * (pulses - 1),
    )


def warmed_dumbbell(queue="red", variant=TCPVariant.NEWRENO, *,
                    n_flows=4, warmup=2.0, seed=9):
    config = DumbbellConfig(
        n_flows=n_flows,
        queue_factory=QUEUE_FACTORIES[queue],
        tcp=TCPConfig(variant=variant),
        seed=seed,
    )
    net = build_dumbbell(config)
    net.start_flows()
    net.run(warmup)
    return net


def drop_totals(net):
    return (net.bottleneck.packets_dropped, net.bottleneck.bytes_dropped)


class TestForkBitIdentity:
    @pytest.mark.parametrize("queue", sorted(QUEUE_FACTORIES))
    def test_fork_digest_matches_original(self, queue):
        net = warmed_dumbbell(queue)
        snapshot = NetworkSnapshot(net)
        fork, _extras = snapshot.fork()
        assert fork.state_digest() == net.state_digest()

    @pytest.mark.parametrize("queue", sorted(QUEUE_FACTORIES))
    def test_fork_evolves_identically_under_attack(self, queue):
        net = warmed_dumbbell(queue)
        snapshot = NetworkSnapshot(net)
        fork, _extras = snapshot.fork()
        for candidate in (net, fork):
            candidate.add_attack(make_train(), start_time=2.0).start()
            candidate.run(6.0)
        assert fork.state_digest() == net.state_digest()
        assert fork.aggregate_goodput_bytes() == net.aggregate_goodput_bytes()
        assert drop_totals(fork) == drop_totals(net)

    @pytest.mark.parametrize(
        "variant",
        [TCPVariant.TAHOE, TCPVariant.RENO, TCPVariant.NEWRENO,
         TCPVariant.SACK],
    )
    def test_fork_identity_across_tcp_variants(self, variant):
        net = warmed_dumbbell("red", variant)
        snapshot = NetworkSnapshot(net)
        fork, _extras = snapshot.fork()
        for candidate in (net, fork):
            candidate.add_attack(make_train(), start_time=2.0).start()
            candidate.run(5.0)
        assert fork.state_digest() == net.state_digest()

    def test_fork_matches_from_scratch_rerun(self):
        # Fork-at-warmup must equal building the identical scenario from
        # scratch and simulating through the same warm-up: the economics
        # of warm starts rest on this equivalence.
        scratch = warmed_dumbbell("red")
        snapshot = NetworkSnapshot(warmed_dumbbell("red"))
        fork, _extras = snapshot.fork()
        assert fork.state_digest() == scratch.state_digest()

    def test_testbed_fork_identity(self):
        net = build_testbed(TestbedConfig(n_flows=3))
        net.start_flows()
        net.run(2.0)
        snapshot = NetworkSnapshot(net)
        fork, _extras = snapshot.fork()
        assert fork.state_digest() == net.state_digest()
        for candidate in (net, fork):
            candidate.add_attack(make_train(mbps(40)), start_time=2.0).start()
            candidate.run(5.0)
        assert fork.state_digest() == net.state_digest()
        assert fork.aggregate_goodput_bytes() == net.aggregate_goodput_bytes()


class TestForkIsolation:
    def test_forks_are_independent(self):
        net = warmed_dumbbell()
        snapshot = NetworkSnapshot(net)
        heavy, _ = snapshot.fork()
        light, _ = snapshot.fork()
        heavy.add_attack(make_train(mbps(80)), start_time=2.0).start()
        light.add_attack(make_train(mbps(20)), start_time=2.0).start()
        heavy.run(6.0)
        light.run(6.0)
        # A harder attack must not bleed into the sibling fork.
        assert (heavy.aggregate_goodput_bytes()
                < light.aggregate_goodput_bytes())

    def test_snapshot_frozen_against_later_mutation(self):
        net = warmed_dumbbell()
        snapshot = NetworkSnapshot(net)
        digest = net.state_digest()
        # Mutate the original well past the snapshot point...
        net.add_attack(make_train(), start_time=2.0).start()
        net.run(7.0)
        # ...and the snapshot still forks from the frozen state.
        fork, _extras = snapshot.fork()
        assert fork.state_digest() == digest

    def test_same_snapshot_forks_identical_uid_streams(self):
        snapshot = NetworkSnapshot(warmed_dumbbell())
        first, _ = snapshot.fork()
        uid_after_first = Packet.peek_uid()
        first.run(4.0)  # consume uids on the first fork
        second, _ = snapshot.fork()
        assert Packet.peek_uid() == uid_after_first
        second.run(4.0)
        assert first.state_digest() == second.state_digest()

    def test_fork_counter(self):
        snapshot = NetworkSnapshot(warmed_dumbbell())
        assert snapshot.forks == 0
        snapshot.fork()
        snapshot.fork()
        assert snapshot.forks == 2


class TestEdgeCases:
    def test_snapshot_with_cancelled_timer_in_calendar(self):
        # Cancelled events stay in the heap as (time, seq, None, ())
        # tombstones; they must deep-copy and replay identically.
        net = warmed_dumbbell(n_flows=2, warmup=1.0)
        cancelled = net.sim.schedule(10.0, lambda: None)
        cancelled.cancel()
        assert net.sim.pending_events > 0
        snapshot = NetworkSnapshot(net)
        fork, _extras = snapshot.fork()
        assert fork.state_digest() == net.state_digest()
        for candidate in (net, fork):
            candidate.run(3.0)
        assert fork.state_digest() == net.state_digest()

    @pytest.mark.parametrize("scheduler", ["heap", "calendar"])
    def test_fork_round_trip_per_backend(self, scheduler):
        # The fork contract is backend-agnostic: freezing a network
        # whose simulator runs the calendar queue (buckets, front,
        # freelist, seq counter) must round-trip as exactly as the
        # heap, and the fork must keep evolving bit-identically.
        config = DumbbellConfig(n_flows=4, seed=9, scheduler=scheduler)
        net = build_dumbbell(config)
        net.start_flows()
        net.run(2.0)
        assert net.sim.scheduler == scheduler
        snapshot = NetworkSnapshot(net)
        fork, _extras = snapshot.fork()
        assert fork.sim.scheduler == scheduler
        assert fork.state_digest() == net.state_digest()
        for candidate in (net, fork):
            candidate.add_attack(make_train(), start_time=2.0).start()
            candidate.run(6.0)
        assert fork.state_digest() == net.state_digest()
        assert fork.aggregate_goodput_bytes() == net.aggregate_goodput_bytes()
        assert drop_totals(fork) == drop_totals(net)

    def test_fork_digest_equal_across_backends(self):
        # Two networks warmed identically on different backends agree
        # on the digest; forks taken from each agree with both.
        nets = []
        for scheduler in ("heap", "calendar"):
            config = DumbbellConfig(n_flows=3, seed=5, scheduler=scheduler)
            net = build_dumbbell(config)
            net.start_flows()
            net.run(2.0)
            nets.append(net)
        heap_net, cal_net = nets
        assert heap_net.state_digest() == cal_net.state_digest()
        heap_fork, _ = NetworkSnapshot(heap_net).fork()
        cal_fork, _ = NetworkSnapshot(cal_net).fork()
        for candidate in (heap_fork, cal_fork):
            candidate.run(4.0)
        assert heap_fork.state_digest() == cal_fork.state_digest()

    def test_snapshot_mid_pulse(self):
        # Freezing while an attack pulse is actively emitting (its next
        # emission event pending in the calendar) must restore the pulse
        # train mid-flight.
        net = warmed_dumbbell(n_flows=2, warmup=1.0)
        net.add_attack(
            PulseTrain(extents=[2.0], rates_bps=[mbps(50)], spaces=[]),
            start_time=1.0,
        ).start()
        net.run(1.5)  # halfway through the 2 s pulse
        snapshot = NetworkSnapshot(net)
        fork, _extras = snapshot.fork()
        for candidate in (net, fork):
            candidate.run(4.0)
        assert fork.state_digest() == net.state_digest()
        assert drop_totals(fork) == drop_totals(net)

    def test_refuses_snapshot_while_running(self):
        net = warmed_dumbbell(n_flows=1, warmup=0.5)

        def snap_inside_event():
            with pytest.raises(SimulationError, match="running"):
                NetworkSnapshot(net)
            net.sim.stop()

        net.sim.schedule(0.1, snap_inside_event)
        net.run(1.0)

    def test_zero_warmup_snapshot(self):
        config = DumbbellConfig(n_flows=2, seed=3)
        net = build_dumbbell(config)
        net.start_flows()
        net.run(0.0)
        snapshot = NetworkSnapshot(net)
        fork, _extras = snapshot.fork()
        for candidate in (net, fork):
            candidate.run(2.0)
        assert fork.state_digest() == net.state_digest()
