"""Fluid (ODE) backend: config mapping, cross-validation, determinism.

The fluid model is a γ-landscape localizer, so the cross-validation
tests hold it to exactly that contract against the packet engine: the
unattacked steady-state goodput must agree closely (both saturate the
bottleneck), and the γ* ordering on a coarse grid must be preserved.
Absolute attacked goodput is gated separately -- and more loosely -- by
``benchmarks/test_bench_model_accuracy.py``.
"""

import dataclasses
import math

import pytest

from repro.core.attack import PulseTrain
from repro.runner import Cell, PlatformSpec
from repro.runner.cells import execute_cell, goodput_rate
from repro.sim.fluid import (
    FluidScenario,
    scenario_from_config,
    simulate_fluid,
)
from repro.sim.tcp import TCPConfig
from repro.sim.topology import QUEUE_FACTORIES, DumbbellConfig
from repro.testbed.dummynet import TestbedConfig
from repro.util.errors import ValidationError
from repro.util.units import mbps, ms

BOTTLENECK = mbps(15)


def make_train(gamma, *, extent=ms(100), rate_bps=mbps(25), window=8.0):
    period = PulseTrain.period_from_gamma(
        gamma=gamma, rate_bps=rate_bps, extent=extent,
        bottleneck_bps=BOTTLENECK,
    )
    return PulseTrain.from_gamma(
        gamma=gamma, rate_bps=rate_bps, extent=extent,
        bottleneck_bps=BOTTLENECK,
        n_pulses=int(math.ceil(window / period)) + 2,
    )


class TestScenarioMapping:
    def test_dumbbell_red_maps_rtts_and_threshold(self):
        config = DumbbellConfig(n_flows=4, seed=0)
        scenario = scenario_from_config(config)
        assert scenario.rtts == tuple(config.flow_rtts())
        assert scenario.service_bps == config.bottleneck_rate_bps
        assert scenario.buffer_bytes == config.buffer_bytes
        # RED signals loss at its max threshold, not the full buffer.
        assert scenario.loss_threshold_bytes == pytest.approx(
            0.8 * config.buffer_bytes)

    def test_dumbbell_droptail_uses_the_full_buffer(self):
        config = DumbbellConfig(
            n_flows=4, seed=0, queue_factory=QUEUE_FACTORIES["droptail"],
        )
        scenario = scenario_from_config(config)
        assert scenario.loss_threshold_bytes == pytest.approx(
            config.buffer_bytes)

    def test_testbed_maps_pipe_parameters(self):
        config = TestbedConfig(n_flows=3, seed=0)
        scenario = scenario_from_config(config)
        assert len(scenario.rtts) == 3
        assert scenario.service_bps == config.pipe.bandwidth_bps
        assert scenario.buffer_bytes == config.pipe.queue_bytes

    @pytest.mark.parametrize("kwargs", [
        dict(rtts=()),
        dict(rtts=(0.0,)),
        dict(service_bps=0.0),
        dict(buffer_bytes=0.0),
        dict(loss_threshold_bytes=2e6),  # exceeds the buffer
    ])
    def test_bad_scenarios_rejected(self, kwargs):
        fields = dict(
            rtts=(0.05,), service_bps=mbps(15), buffer_bytes=1e6,
            loss_threshold_bytes=8e5, tcp=TCPConfig(),
        )
        fields.update(kwargs)
        with pytest.raises(ValidationError):
            FluidScenario(**fields)


class TestCrossValidation:
    def test_unattacked_goodput_matches_the_packet_engine(self):
        # Both backends saturate the unattacked bottleneck, so the
        # steady-state goodput rates must agree closely.
        spec = PlatformSpec(kind="dumbbell", n_flows=3, seed=1)
        packet = Cell(platform=spec, warmup=2.0, window=8.0)
        fluid = dataclasses.replace(packet, backend="fluid")
        packet_rate = goodput_rate(packet, execute_cell(packet))
        fluid_rate = goodput_rate(fluid, execute_cell(fluid))
        assert fluid_rate == pytest.approx(packet_rate, rel=0.05)

    def test_gamma_star_ordering_preserved_on_a_coarse_grid(self):
        # The planner pre-pass contract: the fluid argmax of
        # G = deg * (1 - gamma) must land within one grid step of the
        # packet argmax on a 5-point grid.
        spec = PlatformSpec(kind="dumbbell", n_flows=5, seed=1)
        grid = (0.1, 0.3, 0.5, 0.7, 0.9)

        def gains(backend):
            base = Cell(platform=spec, warmup=2.0, window=8.0,
                        backend=backend)
            base_rate = goodput_rate(base, execute_cell(base))
            out = {}
            for gamma in grid:
                cell = dataclasses.replace(base, train=make_train(gamma))
                rate = goodput_rate(cell, execute_cell(cell))
                out[gamma] = (1.0 - rate / base_rate) * (1.0 - gamma)
            return out

        packet_gains = gains("packet")
        fluid_gains = gains("fluid")
        packet_star = max(grid, key=packet_gains.get)
        fluid_star = max(grid, key=fluid_gains.get)
        assert abs(fluid_star - packet_star) <= 0.2 + 1e-9


class TestFluidDynamics:
    def test_attack_degrades_goodput(self):
        scenario = scenario_from_config(DumbbellConfig(n_flows=5, seed=0))
        base = simulate_fluid(scenario, warmup=2.0, window=8.0)
        attacked = simulate_fluid(
            scenario, warmup=2.0, window=8.0,
            sources=((make_train(0.5), 0.0),),
        )
        assert attacked.goodput_bytes < base.goodput_bytes
        assert attacked.loss_events > base.loss_events

    def test_long_pulses_freeze_short_rtt_flows(self):
        scenario = scenario_from_config(DumbbellConfig(n_flows=5, seed=0))
        attacked = simulate_fluid(
            scenario, warmup=2.0, window=8.0,
            sources=((make_train(0.7, extent=ms(100)), 0.0),),
        )
        assert attacked.rto_events > 0

    def test_attack_starts_after_warmup(self):
        # The forcing term is offset by the warm-up, matching how the
        # packet backend launches attacks: a train whose pulses all end
        # inside a longer warm-up must not touch the window.
        scenario = scenario_from_config(DumbbellConfig(n_flows=3, seed=0))
        base = simulate_fluid(scenario, warmup=6.0, window=4.0)
        early = simulate_fluid(
            scenario, warmup=6.0, window=4.0,
            sources=((make_train(0.9, window=2.0), -6.0),),
        )
        # All pulses fired before t=6 (offset -6 puts them at t=0..2,
        # covering none of the window); steady state recovers by t=6.
        assert early.goodput_bytes == pytest.approx(
            base.goodput_bytes, rel=0.05)

    def test_bit_identical_across_runs(self):
        scenario = scenario_from_config(DumbbellConfig(n_flows=5, seed=0))
        kwargs = dict(warmup=2.0, window=8.0,
                      sources=((make_train(0.5), 0.0),))
        first = simulate_fluid(scenario, **kwargs)
        second = simulate_fluid(scenario, **kwargs)
        assert first == second  # exact, floats included

    def test_seed_does_not_influence_fluid_results(self):
        # The fluid model consumes no randomness: different platform
        # seeds map onto the same scenario and the same bytes.
        a = Cell(platform=PlatformSpec(kind="dumbbell", n_flows=3, seed=1),
                 warmup=1.0, window=4.0, backend="fluid")
        b = dataclasses.replace(
            a, platform=PlatformSpec(kind="dumbbell", n_flows=3, seed=99))
        assert execute_cell(a).goodput_bytes == execute_cell(b).goodput_bytes

    @pytest.mark.parametrize("kwargs", [
        dict(warmup=-1.0, window=8.0),
        dict(warmup=1.0, window=0.0),
        dict(warmup=1.0, window=8.0, max_step=0.0),
    ])
    def test_bad_arguments_rejected(self, kwargs):
        scenario = scenario_from_config(DumbbellConfig(n_flows=2, seed=0))
        with pytest.raises(ValidationError):
            simulate_fluid(scenario, **kwargs)
