"""Convergence monitor: early-exit semantics on synthetic goodput."""

import pytest

from repro.sim.convergence import ConvergenceConfig, GoodputConvergenceMonitor
from repro.sim.engine import Simulator
from repro.util.errors import ValidationError


class ByteSource:
    """A synthetic goodput counter fed by scheduled deposits."""

    def __init__(self, sim):
        self.sim = sim
        self.bytes = 0.0

    def deposit(self, amount):
        self.bytes += amount

    def feed_constant(self, *, rate, until, tick=0.1):
        t = tick
        while t <= until:
            self.sim.schedule_at(t, self.deposit, rate * tick)
            t += tick

    def feed_accelerating(self, *, until, tick=0.1):
        # Rate grows every tick: the cumulative-rate estimate never
        # settles inside any relative band.
        t, amount = tick, 100.0
        while t <= until:
            self.sim.schedule_at(t, self.deposit, amount)
            amount *= 1.5
            t += tick


class TestConfig:
    def test_defaults_validate(self):
        config = ConvergenceConfig()
        assert config.describe() == {
            "check_interval": 1.0, "rel_tol": 0.02,
            "stable_checks": 3, "min_fraction": 0.3,
            "scale_floor": 1e4,
        }

    @pytest.mark.parametrize("kwargs", [
        dict(check_interval=0.0),
        dict(rel_tol=-0.1),
        dict(stable_checks=1),
        dict(min_fraction=1.0),
        dict(min_fraction=-0.2),
        dict(scale_floor=-1.0),
    ])
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            ConvergenceConfig(**kwargs)


class TestMonitor:
    def test_steady_rate_converges_early(self):
        sim = Simulator()
        source = ByteSource(sim)
        source.feed_constant(rate=1e6, until=20.0)
        monitor = GoodputConvergenceMonitor(
            sim, lambda: source.bytes, ConvergenceConfig())
        monitor.arm(start=0.0, horizon=20.0)
        sim.run(until=20.0)
        assert monitor.converged_at is not None
        # First check waits out min_fraction of the window, then
        # stable_checks estimates must agree.
        assert monitor.converged_at >= 0.3 * 20.0
        assert monitor.converged_at < 20.0
        # stop() left the clock at the exit time, not the horizon.
        assert sim.now == monitor.converged_at
        assert monitor.checks_run >= 3

    def test_accelerating_rate_runs_to_horizon(self):
        sim = Simulator()
        source = ByteSource(sim)
        source.feed_accelerating(until=10.0)
        monitor = GoodputConvergenceMonitor(
            sim, lambda: source.bytes,
            ConvergenceConfig(check_interval=0.5, min_fraction=0.1))
        monitor.arm(start=0.0, horizon=10.0)
        sim.run(until=10.0)
        assert monitor.converged_at is None
        assert sim.now == 10.0
        assert monitor.checks_run > 3  # it kept checking, never settled

    def test_flat_zero_goodput_converges(self):
        # A fully starved window (no bytes at all) is steady state at
        # zero, not an unconverged run.
        sim = Simulator()
        monitor = GoodputConvergenceMonitor(
            sim, lambda: 0.0, ConvergenceConfig())
        monitor.arm(start=0.0, horizon=30.0)
        sim.run(until=30.0)
        assert monitor.converged_at is not None
        assert monitor.converged_at < 30.0

    def test_window_offset_from_warmup(self):
        # Arming at a later start measures only post-start deposits:
        # warm-up bytes must not skew the estimate.
        sim = Simulator()
        source = ByteSource(sim)
        source.deposit(5e9)
        source.feed_constant(rate=2e6, until=26.0)
        monitor = GoodputConvergenceMonitor(
            sim, lambda: source.bytes, ConvergenceConfig())
        sim.schedule_at(6.0, lambda: monitor.arm(start=6.0, horizon=26.0))
        sim.run(until=26.0)
        assert monitor.converged_at is not None
        assert monitor.converged_at >= 6.0 + 0.3 * 20.0

    def test_arming_early_excludes_pre_window_bytes(self):
        # Regression: arm() used to read its baseline immediately, so
        # arming before the window opened folded every pre-window byte
        # into the estimates (here a huge burst at t=3 that would make
        # the cumulative rate decay and never settle).  The baseline
        # must be read when the window opens, not when arm() is called.
        sim = Simulator()
        source = ByteSource(sim)
        sim.schedule_at(3.0, source.deposit, 5e9)
        source.feed_constant(rate=2e6, until=26.0)
        monitor = GoodputConvergenceMonitor(
            sim, lambda: source.bytes, ConvergenceConfig())
        monitor.arm(start=6.0, horizon=26.0)  # armed at t=0, early
        sim.run(until=26.0)
        assert monitor.converged_at is not None
        assert monitor.converged_at >= 6.0 + 0.3 * 20.0

    def test_starved_jittery_goodput_converges_via_scale_floor(self):
        # Regression: a fully starved window with stray retransmits
        # (tens of bytes/s against a floor of 1e4 B/s) has spread > 0
        # but mean ~ 0, so the purely relative criterion never fired
        # and these cells -- the very ones early exit helps most -- ran
        # to the horizon.
        sim = Simulator()
        source = ByteSource(sim)
        for i, t in enumerate(range(1, 30, 2)):
            sim.schedule_at(float(t), source.deposit, 40.0 + 15.0 * (i % 3))
        monitor = GoodputConvergenceMonitor(
            sim, lambda: source.bytes, ConvergenceConfig())
        monitor.arm(start=0.0, horizon=30.0)
        sim.run(until=30.0)
        assert monitor.converged_at is not None
        assert monitor.converged_at < 30.0
        # The strictly relative criterion (floor disabled) never fires.
        sim2 = Simulator()
        source2 = ByteSource(sim2)
        for i, t in enumerate(range(1, 30, 2)):
            sim2.schedule_at(float(t), source2.deposit, 40.0 + 15.0 * (i % 3))
        strict = GoodputConvergenceMonitor(
            sim2, lambda: source2.bytes,
            ConvergenceConfig(scale_floor=0.0))
        strict.arm(start=0.0, horizon=30.0)
        sim2.run(until=30.0)
        assert strict.converged_at is None

    def test_too_short_window_never_checks(self):
        # If even the first check lands past the horizon, the monitor
        # schedules nothing and the run is simply exact.
        sim = Simulator()
        monitor = GoodputConvergenceMonitor(
            sim, lambda: 0.0, ConvergenceConfig(check_interval=5.0))
        monitor.arm(start=0.0, horizon=2.0)
        sim.run(until=2.0)
        assert monitor.checks_run == 0
        assert monitor.converged_at is None

    def test_arm_rejects_inverted_window(self):
        sim = Simulator()
        monitor = GoodputConvergenceMonitor(
            sim, lambda: 0.0, ConvergenceConfig())
        with pytest.raises(ValidationError):
            monitor.arm(start=5.0, horizon=5.0)

    def test_arm_rejects_late_attachment(self):
        sim = Simulator()
        sim.schedule_at(4.0, lambda: None)
        sim.run(until=4.0)
        monitor = GoodputConvergenceMonitor(
            sim, lambda: 0.0, ConvergenceConfig())
        with pytest.raises(ValidationError):
            monitor.arm(start=2.0, horizon=10.0)
