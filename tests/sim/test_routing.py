"""The compiled forwarding plane and graph-topology routing.

Pins the tentpole promises: compiled shortest-path routes match a BFS
oracle on random connected graphs, the compiled and dict forwarding
planes are bit-identical on the dumbbell, and the parking-lot scenario
is deterministic across scheduler backends and warm-start forks.
"""

import random

import numpy as np
import pytest

from repro.core.attack import PulseTrain
from repro.runner.cells import Cell, PlatformSpec, execute_cell
from repro.sim.engine import Simulator
from repro.sim.node import FORWARDING_MODES, Node, forwarding_default
from repro.sim.packet import FULL_PACKET_BYTES, Packet, PacketKind
from repro.sim.queues import DropTailQueue
from repro.sim.routing import GraphTopology, aimd_buffer_bytes
from repro.sim.topology import (
    DumbbellConfig,
    ParkingLotConfig,
    build_dumbbell,
    build_parking_lot,
)
from repro.util.errors import ConfigurationError, ValidationError
from repro.util.units import mbps, ms


# ----------------------------------------------------------------------
# aimd_buffer_bytes
# ----------------------------------------------------------------------
class TestAimdBufferRule:
    def test_standard_tcp_gets_full_bdp(self):
        # beta = 1/2 -> B = C*T: the classic full-utilization buffer.
        assert aimd_buffer_bytes(mbps(15), 0.1) == pytest.approx(
            mbps(15) * 0.1 / 8.0
        )

    def test_multiplexing_scales_inverse_sqrt(self):
        one = aimd_buffer_bytes(mbps(100), 0.2, 1)
        many = aimd_buffer_bytes(mbps(100), 0.2, 16)
        assert many == pytest.approx(one / 4.0)

    def test_gentler_decrease_needs_less_buffer(self):
        # beta = 3/4 -> B = C*T/3.
        assert aimd_buffer_bytes(mbps(30), 0.1, beta=0.75) == pytest.approx(
            mbps(30) * 0.1 / 8.0 / 3.0
        )

    def test_floor_bounds_tiny_bdp_links(self):
        assert aimd_buffer_bytes(1e5, 0.001) == 16.0 * FULL_PACKET_BYTES

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValidationError):
            aimd_buffer_bytes(mbps(10), 0.1, beta=1.0)
        with pytest.raises(ValidationError):
            aimd_buffer_bytes(0.0, 0.1)
        with pytest.raises(ValidationError):
            aimd_buffer_bytes(mbps(10), -1.0)


# ----------------------------------------------------------------------
# route compilation vs a BFS oracle
# ----------------------------------------------------------------------
def random_connected_graph(rng: random.Random, n_nodes: int):
    """Random connected undirected graph as a set of duplex edges."""
    edges = set()
    for i in range(1, n_nodes):
        edges.add((rng.randrange(i), i))  # random spanning tree
    extra = rng.randrange(0, 2 * n_nodes)
    for _ in range(extra):
        a, b = rng.randrange(n_nodes), rng.randrange(n_nodes)
        if a != b:
            edges.add((min(a, b), max(a, b)))
    return sorted(edges)


def build_graph(edges, n_nodes, sim=None):
    topo = GraphTopology(sim if sim is not None else Simulator())
    for i in range(n_nodes):
        topo.add_node(f"n{i}")
    for a, b in edges:
        topo.add_duplex_link(
            topo.nodes[a], topo.nodes[b],
            rate_bps=mbps(10), delay=ms(1),
            queue=DropTailQueue(64_000.0), queue_back=DropTailQueue(64_000.0),
        )
    topo.compile_routes()
    return topo


def bfs_distances(edges, n_nodes, root):
    adjacency = {i: [] for i in range(n_nodes)}
    for a, b in edges:
        adjacency[a].append(b)
        adjacency[b].append(a)
    dist = {root: 0}
    frontier = [root]
    while frontier:
        nxt = []
        for node in frontier:
            for neighbor in adjacency[node]:
                if neighbor not in dist:
                    dist[neighbor] = dist[node] + 1
                    nxt.append(neighbor)
        frontier = nxt
    return dist


class TestCompiledRoutesVsOracle:
    def test_compiled_paths_are_shortest_on_random_graphs(self):
        """Property: every compiled path has the BFS-oracle length."""
        rng = random.Random(0xC0FFEE)
        for trial in range(25):
            n_nodes = rng.randrange(2, 14)
            edges = random_connected_graph(rng, n_nodes)
            topo = build_graph(edges, n_nodes)
            for src in range(n_nodes):
                oracle = bfs_distances(edges, n_nodes, src)
                for dst in range(n_nodes):
                    if dst == src:
                        continue
                    path = topo.path(src, dst)
                    assert path is not None, (trial, src, dst)
                    assert len(path) == oracle[dst], (trial, src, dst)
                    # Path validity: contiguous hops ending at dst.
                    assert path[0].src.node_id == src
                    assert path[-1].dst.node_id == dst
                    for first, second in zip(path, path[1:]):
                        assert first.dst is second.src

    def test_compilation_is_deterministic(self):
        """Two identical builds install identical forwarding state."""
        rng = random.Random(7)
        edges = random_connected_graph(rng, 12)
        topo_a = build_graph(edges, 12)
        topo_b = build_graph(edges, 12)
        for src in range(12):
            for dst in range(12):
                if src == dst:
                    continue
                hops_a = [l.dst.node_id for l in topo_a.path(src, dst)]
                hops_b = [l.dst.node_id for l in topo_b.path(src, dst)]
                assert hops_a == hops_b

    def test_compilation_is_idempotent(self):
        rng = random.Random(21)
        edges = random_connected_graph(rng, 9)
        topo = build_graph(edges, 9)
        before = {
            (s, d): [l.dst.node_id for l in topo.path(s, d)]
            for s in range(9) for d in range(9) if s != d
        }
        topo.compile_routes()
        after = {
            (s, d): [l.dst.node_id for l in topo.path(s, d)]
            for s in range(9) for d in range(9) if s != d
        }
        assert before == after

    def test_disconnected_destination_is_unroutable(self):
        topo = GraphTopology(Simulator())
        a = topo.add_node("a")
        b = topo.add_node("b")
        c = topo.add_node("c")
        topo.add_node("island")
        topo.add_duplex_link(a, b, rate_bps=mbps(10), delay=ms(1))
        topo.add_duplex_link(a, c, rate_bps=mbps(10), delay=ms(1))
        topo.compile_routes()
        # From the router (dense table) the island is simply absent;
        # from a host the default route leads to the router, which
        # drops -- either way no path exists.
        assert topo.path(0, 3) is None
        assert topo.path(1, 3) is None
        assert topo.path(1, 2) is not None

    def test_path_rejects_unknown_endpoints(self):
        topo = GraphTopology(Simulator())
        topo.add_node("only")
        with pytest.raises(ConfigurationError):
            topo.path(0, 99)

    def test_duplicate_node_id_rejected(self):
        topo = GraphTopology(Simulator())
        topo.add_node("a", node_id=3)
        with pytest.raises(ConfigurationError):
            topo.add_node("b", node_id=3)

    def test_bad_forwarding_mode_rejected(self):
        with pytest.raises(ValidationError):
            GraphTopology(Simulator(), forwarding="quantum")


# ----------------------------------------------------------------------
# forwarding-plane selection and node-level behaviour
# ----------------------------------------------------------------------
class TestForwardingSelection:
    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FORWARDING", raising=False)
        assert forwarding_default() == "compiled"
        monkeypatch.setenv("REPRO_FORWARDING", "dict")
        assert forwarding_default() == "dict"
        monkeypatch.setenv("REPRO_FORWARDING", "bogus")
        with pytest.raises(ValidationError):
            forwarding_default()

    def test_modes_tuple(self):
        assert FORWARDING_MODES == ("compiled", "dict")


def one_packet(dst, flow_id=1):
    return Packet(PacketKind.CBR, flow_id, 0, dst, 100.0)


class TestNodeForwarding:
    @pytest.mark.parametrize("compiled", [True, False])
    def test_default_route_carries_unknown_destinations(self, compiled):
        sim = Simulator()
        host = Node(sim, 0, "host", compiled=compiled)
        router = Node(sim, 1, "router", compiled=compiled)
        sink = Node(sim, 2, "sink", compiled=compiled)
        from repro.sim.link import Link

        Link(sim, host, router, mbps(10), ms(1))
        Link(sim, router, sink, mbps(10), ms(1))
        host.set_default_route(1)
        router.set_default_route(2)
        got = []
        sink.register_agent(1, got.append)
        host.send(one_packet(2))
        sim.run()
        assert len(got) == 1

    @pytest.mark.parametrize("compiled", [True, False])
    def test_unroutable_counts_undeliverable(self, compiled):
        sim = Simulator()
        node = Node(sim, 0, "lonely", compiled=compiled)
        node.receive(one_packet(9))
        assert node.undeliverable == 1
        assert node.metrics_snapshot() == {"undeliverable_packets": 1.0}

    def test_bulk_register_agents(self):
        sim = Simulator()
        node = Node(sim, 0, "host")
        sink = []
        node.register_agents({1: sink.append, 2: sink.append})
        with pytest.raises(ConfigurationError):
            node.register_agents({2: sink.append, 3: sink.append})
        node.receive(one_packet(0, flow_id=2))
        assert len(sink) == 1


# ----------------------------------------------------------------------
# bit-identicality across planes, backends, and forks
# ----------------------------------------------------------------------
def run_dumbbell(forwarding: str):
    config = DumbbellConfig(n_flows=5, seed=3, forwarding=forwarding)
    net = build_dumbbell(config)
    net.start_flows()
    net.run(until=2.0)
    source = net.add_attack(
        PulseTrain.uniform(ms(75), mbps(25), 0.5, 6), start_time=2.0,
    )
    source.start()
    net.run(until=5.0)
    return net


def run_parking_lot(scheduler=None, forwarding=None, until=4.0):
    config = ParkingLotConfig(
        n_segments=2, long_flows=4, cross_flows=2, seed=5,
        scheduler=scheduler, forwarding=forwarding,
    )
    net = build_parking_lot(config)
    net.start_flows()
    net.run(until=1.5)
    source = net.add_attack(
        PulseTrain.uniform(ms(75), mbps(25), 0.4, 8), start_time=1.5,
    )
    source.start()
    net.run(until=until)
    return net


class TestBitIdenticality:
    def test_dumbbell_compiled_vs_dict(self):
        compiled = run_dumbbell("compiled")
        dict_plane = run_dumbbell("dict")
        assert compiled.sim.events_executed == dict_plane.sim.events_executed
        assert (compiled.aggregate_goodput_bytes()
                == dict_plane.aggregate_goodput_bytes())
        assert compiled.state_digest() == dict_plane.state_digest()

    def test_parking_lot_compiled_vs_dict(self):
        compiled = run_parking_lot(forwarding="compiled")
        dict_plane = run_parking_lot(forwarding="dict")
        assert compiled.state_digest() == dict_plane.state_digest()

    def test_parking_lot_heap_vs_calendar(self):
        """Cross-backend fingerprint: heap and calendar dispatch match."""
        heap = run_parking_lot(scheduler="heap")
        calendar = run_parking_lot(scheduler="calendar")
        assert heap.sim.events_executed == calendar.sim.events_executed
        assert heap.state_digest() == calendar.state_digest()

    def test_parking_lot_snapshot_fork_matches_straight_run(self):
        from repro.sim.checkpoint import NetworkSnapshot

        straight = run_parking_lot(until=4.0)

        config = ParkingLotConfig(
            n_segments=2, long_flows=4, cross_flows=2, seed=5,
        )
        net = build_parking_lot(config)
        net.start_flows()
        net.run(until=1.5)
        snapshot = NetworkSnapshot(net)
        fork, _ = snapshot.fork()
        source = fork.add_attack(
            PulseTrain.uniform(ms(75), mbps(25), 0.4, 8), start_time=1.5,
        )
        source.start()
        fork.run(until=4.0)
        assert fork.state_digest() == straight.state_digest()


# ----------------------------------------------------------------------
# runner PlatformSpec integration
# ----------------------------------------------------------------------
class TestParkingLotPlatformSpec:
    def test_dumbbell_describe_unchanged(self):
        """Existing cells keep their historical cache identity."""
        spec = PlatformSpec(kind="dumbbell", n_flows=15, seed=1)
        assert spec.describe() == {
            "kind": "dumbbell", "n_flows": 15, "seed": 1,
            "tcp": None, "queue": "red",
        }
        testbed = PlatformSpec(kind="testbed", n_flows=10, seed=7)
        assert testbed.describe() == {
            "kind": "testbed", "n_flows": 10, "seed": 7,
            "tcp": None, "use_red": True,
        }

    def test_parking_lot_round_trip(self):
        spec = PlatformSpec(
            kind="parking_lot", n_flows=4, seed=2,
            extra=(("n_segments", 2), ("cross_flows", 2),
                   ("attack_segments", (0, 1))),
        )
        config = spec.to_config()
        assert isinstance(config, ParkingLotConfig)
        assert config.long_flows == 4
        assert config.n_segments == 2
        assert config.attack_segments == (0, 1)
        payload = spec.describe()
        assert payload["kind"] == "parking_lot"
        assert ["attack_segments", [0, 1]] in payload["extra"]
        hash(spec)  # stays hashable for the runner's memo

    def test_extra_restricted_to_parking_lot(self):
        with pytest.raises(ValidationError):
            PlatformSpec(kind="dumbbell", n_flows=5, seed=1,
                         extra=(("n_segments", 2),))

    def test_fluid_backend_rejected(self):
        spec = PlatformSpec(kind="parking_lot", n_flows=4, seed=2)
        with pytest.raises(ValidationError):
            Cell(platform=spec, warmup=1.0, window=2.0, backend="fluid")

    def test_execute_cell_deterministic(self):
        spec = PlatformSpec(
            kind="parking_lot", n_flows=3, seed=4,
            extra=(("cross_flows", 1),),
        )
        cell = Cell(
            platform=spec, warmup=1.0, window=2.0,
            train=PulseTrain.uniform(ms(75), mbps(25), 0.4, 6),
        )
        assert execute_cell(cell) == execute_cell(cell)


# ----------------------------------------------------------------------
# parking-lot construction details
# ----------------------------------------------------------------------
class TestParkingLotConfig:
    def test_attack_span_must_be_contiguous(self):
        with pytest.raises(ConfigurationError):
            ParkingLotConfig(n_segments=3, attack_segments=(0, 2))
        with pytest.raises(ConfigurationError):
            ParkingLotConfig(n_segments=2, attack_segments=())
        with pytest.raises(ConfigurationError):
            ParkingLotConfig(n_segments=2, attack_segments=(1, 2))

    def test_heterogeneous_rates_resolve(self):
        config = ParkingLotConfig(
            n_segments=2, segment_rates_bps=(mbps(10), mbps(20)),
            attack_segments=(0, 1),
        )
        assert config.segment_rates() == (mbps(10), mbps(20))
        assert config.attacked_rate_bps() == mbps(10)

    def test_rtt_draws_are_seeded(self):
        config = ParkingLotConfig(seed=9)
        long_a, cross_a = config.draw_rtts()
        long_b, cross_b = config.draw_rtts()
        assert np.array_equal(long_a, long_b)
        assert np.array_equal(cross_a, cross_b)
        assert long_a.min() >= config.rtt_min
        assert long_a.max() <= config.rtt_max

    def test_network_paths_cross_expected_segments(self):
        net = build_parking_lot(ParkingLotConfig(
            n_segments=3, long_flows=2, cross_flows=1,
            attack_segments=(1, 2),
        ))
        topo = net.topo
        # A long flow's forward path crosses every chain segment.
        path = topo.path(
            net.long_sender_nodes[0].node_id,
            net.long_receiver_nodes[0].node_id,
        )
        chain = [link for link in path if link in net.segment_links]
        assert len(chain) == 3
        # The attack path crosses exactly the attacked span.
        attack_path = topo.path(
            net.attacker_node.node_id, net.attack_sink_node.node_id,
        )
        attacked = [l for l in attack_path if l in net.segment_links]
        assert attacked == [net.segment_links[1], net.segment_links[2]]
