"""Randomized robustness properties of the TCP implementation.

Hypothesis generates arbitrary finite loss patterns and checks the
invariants every variant must uphold: eventual delivery, cumulative-ACK
sanity, and conservation between sender and receiver bookkeeping.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.sim.tcp import TCPConfig, TCPVariant

from tests.sim.tcp_harness import TCPHarness

VARIANTS = [TCPVariant.TAHOE, TCPVariant.RENO, TCPVariant.NEWRENO,
            TCPVariant.SACK]

loss_patterns = st.sets(st.integers(0, 80), max_size=12)


def run_with_losses(variant, losses, duration=8.0):
    config = TCPConfig(
        variant=variant,
        delayed_ack=1,
        min_rto=0.2,
        initial_rto=0.4,
        initial_cwnd=8.0,
        initial_ssthresh=32.0,
    )
    harness = TCPHarness(config)
    harness.drop_seqs(losses)
    harness.start()
    harness.run(duration)
    return harness


@pytest.mark.parametrize("variant", VARIANTS)
class TestLossRobustness:
    @given(losses=loss_patterns)
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_finite_losses_always_repaired(self, variant, losses):
        """Any finite first-transmission loss pattern must be recovered."""
        harness = run_with_losses(variant, losses, duration=10.0)
        sender = harness.sender
        if losses:
            assert sender.cumack >= max(losses)
        assert sender.acked_segments > 100

    @given(losses=loss_patterns)
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_bookkeeping_invariants(self, variant, losses):
        harness = run_with_losses(variant, losses, duration=3.0)
        sender, receiver = harness.sender, harness.receiver
        # The sender can never have ACKed data it did not send.
        assert sender.cumack <= sender.highest_sent
        # next_seq always points past the cumulative ACK (it may sit
        # below highest_sent mid-way through a go-back-N recovery).
        assert sender.next_seq > sender.cumack
        # Sender and receiver agree on the cumulative point eventually
        # (receiver may be ahead only by ACKs still in flight).
        assert receiver.cumack >= sender.cumack
        # Retransmission accounting is consistent.
        assert sender.retransmissions <= sender.segments_sent
        assert sender.segments_sent >= sender.acked_segments

    @given(losses=loss_patterns, data=st.data())
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_delayed_ack_does_not_break_recovery(self, variant, losses, data):
        config = TCPConfig(
            variant=variant, delayed_ack=2, min_rto=0.2, initial_rto=0.4,
            initial_cwnd=8.0,
        )
        harness = TCPHarness(config)
        harness.drop_seqs(losses)
        harness.start()
        # Generous horizon: stacked RTO backoffs can stretch recovery.
        harness.run(12.0)
        if losses:
            assert harness.sender.cumack >= max(losses)
