"""TCP over real links: throughput, fairness, delayed ACKs, AIMD pairs."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.node import Node
from repro.sim.queues import DropTailQueue
from repro.sim.tcp import AIMDParams, TCPConfig, TCPReceiver, TCPSender, TCPVariant


def two_node_flow(config, *, rate_bps=10e6, delay=0.02, buffer_bytes=30_000.0,
                  n_flows=1):
    """n flows across one bottleneck link; returns (sim, senders)."""
    sim = Simulator()
    a, b = Node(sim, 0, "src"), Node(sim, 1, "dst")
    Link(sim, a, b, rate_bps, delay, DropTailQueue(buffer_bytes))
    Link(sim, b, a, rate_bps, delay, DropTailQueue(1_000_000.0))
    senders = []
    for flow in range(n_flows):
        senders.append(TCPSender(sim, a, flow, receiver_node_id=1,
                                 config=config))
        TCPReceiver(sim, b, flow, sender_node_id=0, config=config)
    return sim, senders


def make_config(**overrides):
    params = dict(variant=TCPVariant.NEWRENO, delayed_ack=1, min_rto=0.2,
                  initial_rto=1.0)
    params.update(overrides)
    return TCPConfig(**params)


class TestSingleFlow:
    def test_saturates_bottleneck(self):
        config = make_config()
        sim, senders = two_node_flow(config)
        senders[0].start()
        sim.run(until=10.0)
        goodput_bps = senders[0].goodput_bytes() * 8 / 10.0
        # >= 80% of line rate after slow-start ramp and header overhead.
        assert goodput_bps > 0.8 * 10e6

    def test_loss_recovery_keeps_data_flowing(self):
        config = make_config()
        # Tiny buffer forces periodic overflow: the classic sawtooth.
        sim, senders = two_node_flow(config, buffer_bytes=8 * 1500.0)
        senders[0].start()
        sim.run(until=10.0)
        sender = senders[0]
        assert sender.fast_retransmits + sender.timeouts > 0
        assert sender.goodput_bytes() * 8 / 10.0 > 0.5 * 10e6

    def test_delivery_is_exactly_in_order(self):
        config = make_config()
        sim, senders = two_node_flow(config, buffer_bytes=8 * 1500.0)
        senders[0].start()
        sim.run(until=5.0)
        # Receiver's cumulative point can't exceed sender's next_seq.
        assert senders[0].cumack < senders[0].next_seq


class TestDelayedAck:
    def test_d2_slows_window_growth(self):
        grown = {}
        for d in (1, 2):
            config = make_config(delayed_ack=d, initial_ssthresh=4.0,
                                 initial_cwnd=4.0)
            sim, senders = two_node_flow(config, rate_bps=100e6)
            senders[0].start()
            sim.run(until=2.0)
            grown[d] = senders[0].cwnd
        # Congestion avoidance grows ~a/d per RTT.
        assert grown[2] < grown[1]
        ratio = (grown[1] - 4.0) / max(grown[2] - 4.0, 1e-9)
        assert ratio == pytest.approx(2.0, rel=0.35)


class TestGeneralAIMD:
    def test_gentler_decrease_keeps_higher_window(self):
        results = {}
        for b in (0.5, 0.875):
            config = make_config(aimd=AIMDParams(1.0, b))
            sim, senders = two_node_flow(config, buffer_bytes=10 * 1500.0)
            senders[0].start()
            sim.run(until=8.0)
            results[b] = senders[0].goodput_bytes()
        assert results[0.875] >= results[0.5] * 0.95

    def test_tcp_friendly_pair_comparable_throughput(self):
        results = {}
        for aimd in (AIMDParams.standard_tcp(), AIMDParams.tcp_friendly(0.875)):
            config = make_config(aimd=aimd)
            sim, senders = two_node_flow(config, buffer_bytes=10 * 1500.0)
            senders[0].start()
            sim.run(until=10.0)
            results[aimd.decrease] = senders[0].goodput_bytes() * 8 / 10.0
        # Yang & Lam's pairing keeps long-run throughput within ~35%.
        assert results[0.875] == pytest.approx(results[0.5], rel=0.35)


class TestMultiFlow:
    def test_capacity_shared(self):
        config = make_config()
        sim, senders = two_node_flow(config, n_flows=4,
                                     buffer_bytes=40 * 1500.0)
        for sender in senders:
            sender.start()
        sim.run(until=12.0)
        total = sum(s.goodput_bytes() for s in senders) * 8 / 12.0
        assert total > 0.8 * 10e6
        # Equal RTTs: no flow should get more than half the pie.
        shares = [s.goodput_bytes() * 8 / 12.0 / 10e6 for s in senders]
        assert max(shares) < 0.55

    def test_all_flows_progress(self):
        config = make_config()
        sim, senders = two_node_flow(config, n_flows=4,
                                     buffer_bytes=20 * 1500.0)
        for sender in senders:
            sender.start()
        sim.run(until=12.0)
        for sender in senders:
            assert sender.acked_segments > 100
