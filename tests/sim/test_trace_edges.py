"""Edge cases for the tracing instruments (horizon boundaries, partial
final bins, and monitors attached while a run is in flight)."""

import numpy as np
import pytest

from repro.sim.link import Link
from repro.sim.node import Node
from repro.sim.packet import Packet, PacketKind
from repro.sim.queues import DropTailQueue
from repro.sim.trace import DropMonitor, QueueSampler, RateMonitor


def make_packet(kind=PacketKind.DATA, size=1000.0, flow_id=0):
    return Packet(kind, flow_id=flow_id, src=0, dst=1, size_bytes=size)


def make_link(sim, rate_bps=1e4, queue_bytes=100_000):
    a, b = Node(sim, 0), Node(sim, 1)
    link = Link(sim, a, b, rate_bps=rate_bps, delay=0.0,
                queue=DropTailQueue(queue_bytes))
    b.register_agent(0, lambda p: None)
    return link


class TestRateMonitorBoundaries:
    def test_arrival_exactly_at_horizon_is_excluded(self):
        # t == horizon indexes one past the last bin: [0, horizon) window.
        monitor = RateMonitor(bin_width=1.0, horizon=5.0)
        monitor.observe(make_packet(size=100), 5.0, True)
        assert monitor.bytes_per_bin.sum() == 0.0

    def test_arrival_just_inside_horizon_lands_in_last_bin(self):
        monitor = RateMonitor(bin_width=1.0, horizon=5.0)
        monitor.observe(make_packet(size=100), 4.999999, True)
        assert monitor.bytes_per_bin[-1] == 100.0

    def test_arrival_exactly_on_bin_edge_goes_to_later_bin(self):
        monitor = RateMonitor(bin_width=1.0, horizon=3.0)
        monitor.observe(make_packet(size=100), 1.0, True)
        assert list(monitor.bytes_per_bin) == [0.0, 100.0, 0.0]

    def test_partial_final_bin_from_non_divisible_horizon(self):
        # horizon = 2.5 with bin_width = 1.0: ceil gives three bins, the
        # last covering only [2.0, 2.5) of real time -- never a zero-width
        # bin, and arrivals in the partial tail are still captured.
        monitor = RateMonitor(bin_width=1.0, horizon=2.5)
        assert monitor.n_bins == 3
        monitor.observe(make_packet(size=100), 2.25, True)
        assert monitor.bytes_per_bin[-1] == 100.0
        assert len(monitor.times) == 3

    def test_float_ceil_does_not_add_spurious_bin(self):
        # 0.3 / 0.1 is 2.9999... in floats; ceil must still give 3 bins.
        monitor = RateMonitor(bin_width=0.1, horizon=0.3)
        assert monitor.n_bins == 3

    def test_rate_bps_partial_final_bin_uses_nominal_width(self):
        # Rates always normalize by the nominal bin width, even for the
        # partial tail bin -- documented behaviour the figures rely on.
        monitor = RateMonitor(bin_width=1.0, horizon=2.5)
        monitor.observe(make_packet(size=1000), 2.25, True)
        assert monitor.rate_bps()[-1] == pytest.approx(8000.0)

    def test_attached_mid_run_sees_only_later_arrivals(self, sim):
        link = make_link(sim, rate_bps=1e6)
        monitor = RateMonitor(bin_width=1.0, horizon=4.0)
        sim.schedule(0.5, lambda: link.send(make_packet(size=100)))
        # Attach at t=2, after the first packet has come and gone.
        sim.schedule(2.0, lambda: link.monitors.append(monitor.observe))
        sim.schedule(2.5, lambda: link.send(make_packet(size=200)))
        sim.run()
        assert list(monitor.bytes_per_bin) == [0.0, 0.0, 200.0, 0.0]


class TestQueueSamplerBoundaries:
    def test_tick_exactly_at_horizon_still_samples(self, sim):
        link = make_link(sim)
        sampler = QueueSampler(link, interval=0.25, horizon=1.0)
        sampler.start()
        sim.run(until=2.0)
        times = sampler.as_arrays()[0]
        # Ticks at 0, .25, .5, .75, 1.0 -- the guard is now > horizon,
        # so the tick landing exactly on the horizon is included.
        assert list(times) == [0.0, 0.25, 0.5, 0.75, 1.0]

    def test_no_samples_past_horizon(self, sim):
        link = make_link(sim)
        sampler = QueueSampler(link, interval=0.3, horizon=1.0)
        sampler.start()
        sim.run(until=2.0)
        times = sampler.as_arrays()[0]
        assert times.max() <= 1.0
        # Sampling stops permanently: no events left in the calendar.
        assert len(times) == 4  # 0, 0.3, 0.6, 0.9

    def test_started_mid_run_samples_from_now(self, sim):
        link = make_link(sim)
        sampler = QueueSampler(link, interval=0.5, horizon=2.0)
        sim.schedule(1.2, sampler.start)
        for _ in range(3):
            link.send(make_packet(size=1000))
        sim.run(until=3.0)
        times, qbytes, qpkts = sampler.as_arrays()
        assert list(times) == [1.2, 1.7]
        # At 10 kb/s the three 1000 B packets have all departed by t=2.4;
        # at 1.2 s two are still queued behind the one on the wire.
        assert qpkts[0] == 2

    def test_empty_as_arrays_shapes(self, sim):
        link = make_link(sim)
        sampler = QueueSampler(link, interval=0.1, horizon=1.0)
        times, qbytes, qpkts = sampler.as_arrays()
        assert times.shape == qbytes.shape == qpkts.shape == (0,)


class TestDropMonitorMidRun:
    def test_attached_mid_run_counts_only_later_drops(self, sim):
        # Queue of one packet: back-to-back sends overflow immediately.
        link = make_link(sim, rate_bps=1e3, queue_bytes=1000)
        monitor = DropMonitor()

        def burst():
            for _ in range(3):
                link.send(make_packet(size=1000))

        burst()  # two drops before the monitor exists (buffer fits one)
        sim.schedule(1.0, lambda: link.monitors.append(monitor.observe))
        # At t=2 the first packet (8 s serialization at 1 kb/s) still holds
        # the link and the buffer is full, so the whole second burst drops.
        sim.schedule(2.0, burst)
        sim.run()
        assert link.packets_dropped == 5
        assert monitor.total_drops == 3
        assert all(t >= 2.0 for t in monitor.drop_times())

    def test_counters_match_records_after_mixed_traffic(self, sim):
        link = make_link(sim, rate_bps=1e3, queue_bytes=1000)
        monitor = DropMonitor()
        link.monitors.append(monitor.observe)
        for kind in (PacketKind.DATA, PacketKind.ATTACK, PacketKind.ATTACK):
            link.send(make_packet(kind, size=1000))
        sim.run()
        assert monitor.total_drops == 2
        assert monitor.attack_drops + monitor.legit_drops == monitor.total_drops
        assert monitor.attack_drops == sum(
            1 for _, _, is_attack in monitor.records if is_attack)
