"""DropTail and RED queue disciplines."""

import random

import pytest

from repro.sim.queues import DropTailQueue, QueueState, REDQueue
from repro.util.errors import ValidationError


def state(queue_bytes=0.0, queue_pkts=0, now=0.0, idle_since=None):
    return QueueState(queue_bytes, queue_pkts, now, idle_since)


class TestDropTail:
    def test_accepts_when_empty(self):
        q = DropTailQueue(10_000)
        assert q.admit(1500, state())
        assert q.accepts == 1

    def test_drops_when_full(self):
        q = DropTailQueue(3000)
        assert not q.admit(1500, state(queue_bytes=2000, queue_pkts=2))
        assert q.drops == 1

    def test_exact_fit_accepted(self):
        q = DropTailQueue(3000)
        assert q.admit(1000, state(queue_bytes=2000, queue_pkts=2))

    def test_capacity_validated(self):
        with pytest.raises(ValidationError):
            DropTailQueue(0)

    def test_reset_counters(self):
        q = DropTailQueue(1000)
        q.admit(500, state())
        q.admit(2000, state())
        q.reset_counters()
        assert q.accepts == 0
        assert q.drops == 0


def make_red(**overrides):
    params = dict(
        capacity_bytes=100 * 1500.0,
        min_th=20.0,
        max_th=80.0,
        max_p=0.1,
        w_q=0.02,
        gentle=True,
        rng=random.Random(7),
    )
    params.update(overrides)
    return REDQueue(**params)


class TestREDValidation:
    def test_thresholds_ordered(self):
        with pytest.raises(ValidationError):
            make_red(min_th=50.0, max_th=40.0)

    def test_max_p_probability(self):
        with pytest.raises(ValidationError):
            make_red(max_p=1.5)

    def test_w_q_probability(self):
        with pytest.raises(ValidationError):
            make_red(w_q=-0.1)


class TestREDAverage:
    def test_average_tracks_queue(self):
        q = make_red()
        for _ in range(200):
            q.admit(1500, state(queue_bytes=15_000, queue_pkts=10))
        # EWMA converges toward the instantaneous queue (10 packets).
        assert q.avg == pytest.approx(10.0, rel=0.05)

    def test_average_starts_at_zero(self):
        q = make_red()
        assert q.avg == 0.0

    def test_idle_period_decays_average(self):
        q = make_red(service_rate_bps=15e6)
        for _ in range(200):
            q.admit(1500, state(queue_bytes=60_000, queue_pkts=40))
        peak = q.avg
        # Queue sat empty for one second before the next arrival.
        q.admit(1500, state(queue_bytes=0, queue_pkts=0, now=10.0,
                            idle_since=9.0))
        assert q.avg < peak * 0.5

    def test_idle_arrival_folds_sample_after_decay(self):
        # ns-2 semantics: an arrival ending an idle period decays the
        # average by (1-w_q)^m over the idle gap and THEN applies the
        # normal w_q update with its own queue sample -- it must not
        # skip the sample fold.
        q = make_red(service_rate_bps=15e6, w_q=0.02)
        q.avg = 40.0
        q.admit(1500, state(queue_bytes=0, queue_pkts=0, now=10.0,
                            idle_since=9.999))
        service = 1000.0 * 8.0 / 15e6  # mean-size packet transmission time
        m = 0.001 / service
        expected = 40.0 * (1.0 - 0.02) ** m * (1.0 - 0.02)  # decay, then q=0
        assert q.avg == pytest.approx(expected, rel=1e-9)

    def test_byte_mode_measures_bytes(self):
        q = make_red(byte_mode=True, min_th=20_000.0, max_th=80_000.0)
        for _ in range(100):
            q.admit(1500, state(queue_bytes=10_000, queue_pkts=7))
        assert q.avg == pytest.approx(10_000, rel=0.3)


class TestREDDropping:
    def test_no_drops_below_min_th(self):
        q = make_red()
        for _ in range(500):
            assert q.admit(1500, state(queue_bytes=7_500, queue_pkts=5))
        assert q.early_drops == 0

    def test_early_drops_between_thresholds(self):
        q = make_red()
        for _ in range(2000):
            q.admit(1500, state(queue_bytes=75_000, queue_pkts=50))
        assert q.early_drops > 0
        # ... but nowhere near everything.
        assert q.accepts > q.early_drops

    def test_all_dropped_far_beyond_gentle_region(self):
        q = make_red(gentle=True, capacity_bytes=1000 * 1500.0)
        # Push the average way past 2*max_th (160) with a roomy buffer, so
        # the refusal below comes from RED, not from a full buffer.
        for _ in range(3000):
            q.admit(1500, state(queue_bytes=300_000, queue_pkts=200))
        assert not q.admit(1500, state(queue_bytes=300_000, queue_pkts=200))
        assert q.early_drops > 0

    def test_gentle_mode_softer_than_hard_cutoff(self):
        drops = {}
        for gentle in (True, False):
            q = make_red(gentle=gentle, rng=random.Random(3))
            for _ in range(1500):
                # 90 packets buffered: average settles above max_th (80)
                # but the buffer itself is not full.
                q.admit(1500, state(queue_bytes=135_000, queue_pkts=90))
            drops[gentle] = q.early_drops
        assert drops[True] < drops[False]

    def test_forced_drop_when_buffer_full(self):
        q = make_red()
        full = state(queue_bytes=100 * 1500.0 - 100, queue_pkts=100)
        assert not q.admit(1500, full)
        assert q.drops == 1

    def test_drop_probability_increases_with_average(self):
        q = make_red()
        q.avg = 30.0
        p_low = q._drop_probability(1500)
        q.avg = 70.0
        p_high = q._drop_probability(1500)
        assert 0 < p_low < p_high <= 0.1

    def test_gentle_region_probability(self):
        q = make_red()
        q.avg = 120.0  # between max_th (80) and 2*max_th (160)
        p = q._drop_probability(1500)
        assert 0.1 < p < 1.0

    def test_byte_mode_scales_with_packet_size(self):
        q = make_red(byte_mode=True, min_th=20_000.0, max_th=80_000.0,
                     mean_pkt_bytes=1000.0)
        q.avg = 50_000.0
        small = q._drop_probability(500)
        large = q._drop_probability(2000)
        assert large == pytest.approx(4 * small)

    def test_deterministic_with_seeded_rng(self):
        outcomes = []
        for _ in range(2):
            q = make_red(rng=random.Random(99))
            run = [
                q.admit(1500, state(queue_bytes=75_000, queue_pkts=50))
                for _ in range(300)
            ]
            outcomes.append(run)
        assert outcomes[0] == outcomes[1]
