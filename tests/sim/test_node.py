"""Node forwarding and agent delivery."""

import pytest

from repro.sim.link import Link
from repro.sim.node import Node
from repro.sim.packet import Packet, PacketKind
from repro.util.errors import ConfigurationError


def make_packet(dst, flow_id=0):
    return Packet(PacketKind.DATA, flow_id=flow_id, src=0, dst=dst,
                  size_bytes=100.0)


@pytest.fixture
def chain(sim):
    """a -- b -- c with routes a->c via b."""
    a, b, c = Node(sim, 0, "a"), Node(sim, 1, "b"), Node(sim, 2, "c")
    Link(sim, a, b, 1e9, 0.001)
    Link(sim, b, c, 1e9, 0.001)
    a.add_route(2, 1)
    b.add_route(2, 2)
    return a, b, c


class TestDelivery:
    def test_multi_hop_forwarding(self, sim, chain):
        a, _b, c = chain
        got = []
        c.register_agent(0, got.append)
        a.send(make_packet(dst=2))
        sim.run()
        assert len(got) == 1

    def test_local_delivery_to_agent(self, sim, chain):
        _a, _b, c = chain
        got = []
        c.register_agent(5, got.append)
        c.receive(make_packet(dst=2, flow_id=5))
        assert len(got) == 1

    def test_unknown_flow_counted_undeliverable(self, sim, chain):
        _a, _b, c = chain
        c.receive(make_packet(dst=2, flow_id=99))
        assert c.undeliverable == 1

    def test_unroutable_destination_discarded(self, sim, chain):
        a, _b, _c = chain
        a.send(make_packet(dst=42))
        assert a.undeliverable == 1

    def test_agents_demultiplex_by_flow(self, sim, chain):
        _a, _b, c = chain
        got1, got2 = [], []
        c.register_agent(1, got1.append)
        c.register_agent(2, got2.append)
        c.receive(make_packet(dst=2, flow_id=2))
        assert (len(got1), len(got2)) == (0, 1)


class TestWiring:
    def test_duplicate_agent_rejected(self, sim):
        node = Node(sim, 0)
        node.register_agent(1, lambda p: None)
        with pytest.raises(ConfigurationError):
            node.register_agent(1, lambda p: None)

    def test_route_requires_existing_link(self, sim):
        node = Node(sim, 0)
        with pytest.raises(ConfigurationError):
            node.add_route(5, 9)

    def test_link_attachment_creates_neighbor_route(self, sim):
        a, b = Node(sim, 0), Node(sim, 1)
        link = Link(sim, a, b, 1e9, 0.0)
        assert a.link_to(1) is link
        got = []
        b.register_agent(0, got.append)
        a.send(make_packet(dst=1))
        sim.run()
        assert len(got) == 1

    def test_link_to_missing_neighbor_raises(self, sim):
        node = Node(sim, 0)
        with pytest.raises(ConfigurationError):
            node.link_to(3)
