"""Link serialization, propagation, buffering, and monitors."""

import pytest

from repro.sim.link import Link
from repro.sim.node import Node
from repro.sim.packet import Packet, PacketKind
from repro.sim.queues import DropTailQueue


def make_packet(size=1500.0, flow_id=0, dst=1, kind=PacketKind.DATA):
    return Packet(kind, flow_id=flow_id, src=0, dst=dst, size_bytes=size)


@pytest.fixture
def wire(sim):
    """Two nodes joined by a 1 Mb/s, 10 ms link; deliveries recorded."""
    a = Node(sim, 0, "a")
    b = Node(sim, 1, "b")
    arrivals = []
    b.register_agent(0, lambda pkt: arrivals.append((sim.now, pkt)))
    link = Link(sim, a, b, rate_bps=1e6, delay=0.01,
                queue=DropTailQueue(10 * 1500.0))
    return link, arrivals


class TestTiming:
    def test_single_packet_latency(self, sim, wire):
        link, arrivals = wire
        link.send(make_packet(size=1250.0))  # 10 ms serialization at 1 Mb/s
        sim.run()
        assert len(arrivals) == 1
        assert arrivals[0][0] == pytest.approx(0.02)  # 10 ms tx + 10 ms prop

    def test_back_to_back_packets_serialize(self, sim, wire):
        link, arrivals = wire
        link.send(make_packet(size=1250.0))
        link.send(make_packet(size=1250.0))
        sim.run()
        times = [t for t, _ in arrivals]
        assert times[0] == pytest.approx(0.02)
        assert times[1] == pytest.approx(0.03)  # waits for the first tx

    def test_fifo_order_preserved(self, sim, wire):
        link, arrivals = wire
        sent = [make_packet() for _ in range(5)]
        for packet in sent:
            link.send(packet)
        sim.run()
        assert [p.uid for _, p in arrivals] == [p.uid for p in sent]

    def test_idle_gap_resets_serialization(self, sim, wire):
        link, arrivals = wire
        link.send(make_packet(size=1250.0))
        sim.run()
        # Second packet sent long after the first finished.
        sim.schedule(0.0, lambda: None)
        link.send(make_packet(size=1250.0))
        sim.run()
        assert arrivals[1][0] == pytest.approx(arrivals[0][0] + 0.02)

    def test_transmission_time(self, sim, wire):
        link, _ = wire
        assert link.transmission_time(1250.0) == pytest.approx(0.01)


class TestBuffering:
    def test_drops_beyond_capacity(self, sim, wire):
        link, arrivals = wire
        for _ in range(15):  # buffer holds 10 x 1500 B
            link.send(make_packet())
        sim.run()
        assert len(arrivals) == 10
        assert link.packets_dropped == 5
        assert link.bytes_dropped == 5 * 1500.0

    def test_queue_occupancy_expires_lazily(self, sim, wire):
        link, _ = wire
        for _ in range(3):
            link.send(make_packet(size=1250.0))
        assert link.queue_packets == 3
        sim.run(until=0.021)  # two departures done (at 10 and 20 ms)
        assert link.queue_packets == 1
        sim.run()
        assert link.queue_packets == 0
        assert link.queue_bytes == 0.0

    def test_peak_queue_recorded(self, sim, wire):
        link, _ = wire
        for _ in range(4):
            link.send(make_packet())
        assert link.peak_queue_bytes == 4 * 1500.0

    def test_stats_accumulate(self, sim, wire):
        link, _ = wire
        link.send(make_packet())
        link.send(make_packet())
        sim.run()
        assert link.packets_sent == 2
        assert link.bytes_sent == 3000.0
        assert link.utilization_bytes == 3000.0


class TestMonitors:
    def test_monitor_sees_accepts_and_drops(self, sim, wire):
        link, _ = wire
        seen = []
        link.monitors.append(lambda pkt, now, ok: seen.append(ok))
        for _ in range(12):
            link.send(make_packet())
        assert seen.count(True) == 10
        assert seen.count(False) == 2

    def test_monitor_timestamps_are_send_times(self, sim, wire):
        link, _ = wire
        stamps = []
        link.monitors.append(lambda pkt, now, ok: stamps.append(now))
        sim.schedule(1.5, link.send, make_packet())
        sim.run()
        assert stamps == [1.5]

    def test_default_queue_provided(self, sim):
        a, b = Node(sim, 0), Node(sim, 1)
        link = Link(sim, a, b, rate_bps=1e6, delay=0.0)
        assert link.queue.capacity_bytes > 0

    def test_hop_counter_increments(self, sim, wire):
        link, arrivals = wire
        link.send(make_packet())
        sim.run()
        assert arrivals[0][1].hops == 1
