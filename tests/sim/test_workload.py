"""Finite transfers and the short-flow workload."""

import pytest

from repro.sim.tcp import TCPConfig, TCPVariant
from repro.sim.topology import DumbbellConfig, build_dumbbell
from repro.sim.workload import ShortFlowWorkload
from repro.util.errors import ConfigurationError
from repro.util.units import ms

from tests.sim.tcp_harness import TCPHarness
from repro.sim.tcp import TCPSender, TCPReceiver


def finite_config(**overrides):
    params = dict(variant=TCPVariant.NEWRENO, delayed_ack=1, min_rto=0.2,
                  initial_rto=0.3, initial_cwnd=4.0)
    params.update(overrides)
    return TCPConfig(**params)


class TestFiniteTransfers:
    def make(self, size, losses=(), one_way=0.05, config=None):
        harness = TCPHarness(config or finite_config(), one_way=one_way)
        # Replace the bulk sender with a finite one on the same wire.
        harness.sender = TCPSender(
            harness.sim, harness.sender_node, flow_id=2,
            receiver_node_id=1, config=harness.config,
            transfer_segments=size,
        )
        harness.receiver = TCPReceiver(
            harness.sim, harness.receiver_node, flow_id=2,
            sender_node_id=0, config=harness.config,
        )
        if losses:
            pending = set(losses)

            def drop(packet):
                if (packet.flow_id == 2 and packet.seq in pending
                        and not packet.retransmit):
                    pending.discard(packet.seq)
                    return True
                return False

            harness.sender_node.drop_filter = drop
        return harness

    def test_transfer_completes_exactly(self):
        h = self.make(size=25)
        h.sender.start()
        h.run(5.0)
        assert h.sender.completed
        assert h.sender.acked_segments == 25
        assert h.sender.segments_sent == 25  # no spurious extras

    def test_completion_time_positive(self):
        h = self.make(size=25)
        h.sender.start()
        h.run(5.0)
        fct = h.sender.completion_time()
        assert fct is not None
        # At least two RTTs (slow start from cwnd 4 over 25 segments).
        assert fct >= 2 * h.rtt

    def test_loss_delays_completion(self):
        clean = self.make(size=25)
        clean.sender.start()
        clean.run(10.0)
        lossy = self.make(size=25, losses={24})  # final segment lost: RTO
        lossy.sender.start()
        lossy.run(10.0)
        assert lossy.sender.completed
        assert lossy.sender.completion_time() > clean.sender.completion_time()

    def test_on_complete_callback(self):
        fired = []
        h = self.make(size=10)
        h.sender.on_complete = fired.append
        h.sender.start()
        h.run(5.0)
        assert fired == [h.sender]

    def test_incomplete_reports_none(self):
        h = self.make(size=10_000)
        h.sender.start()
        h.run(0.3)
        assert not h.sender.completed
        assert h.sender.completion_time() is None

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            self.make(size=0)

    def test_sack_variant_finite(self):
        h = self.make(size=40, losses={10, 12},
                      config=finite_config(variant=TCPVariant.SACK,
                                           initial_cwnd=8.0))
        h.sender.start()
        h.run(8.0)
        assert h.sender.completed
        assert h.sender.acked_segments == 40


class TestShortFlowWorkload:
    def run_workload(self, horizon=15.0, **kwargs):
        net = build_dumbbell(DumbbellConfig(n_flows=2, seed=4))
        src, dst = net.add_host_pair(rtt=ms(100))
        params = dict(mean_size_segments=10.0, mean_interarrival=0.3, seed=5)
        params.update(kwargs)
        workload = ShortFlowWorkload(net.sim, src, dst, **params)
        net.start_flows()
        workload.start()
        net.run(until=horizon)
        workload.finalize()
        return workload

    def test_flows_launch_and_complete(self):
        workload = self.run_workload()
        assert workload.launched > 20
        assert len(workload.completed_records()) > 0.8 * workload.launched

    def test_records_cover_all_launches(self):
        workload = self.run_workload()
        assert len(workload.records) == workload.launched

    def test_unique_flow_ids(self):
        workload = self.run_workload()
        ids = [r.flow_id for r in workload.records]
        assert len(set(ids)) == len(ids)

    def test_percentiles_ordered(self):
        workload = self.run_workload()
        p = workload.fct_percentiles((50, 90, 99))
        assert p[50] <= p[90] <= p[99]

    def test_max_flows_bounds_launches(self):
        workload = self.run_workload(max_flows=5)
        assert workload.launched == 5

    def test_start_idempotent(self):
        net = build_dumbbell(DumbbellConfig(n_flows=1, seed=4))
        src, dst = net.add_host_pair()
        workload = ShortFlowWorkload(net.sim, src, dst, max_flows=3,
                                     mean_interarrival=0.1)
        workload.start()
        workload.start()
        net.run(until=5.0)
        assert workload.launched == 3


class TestHostPair:
    def test_rtt_too_small_rejected(self):
        net = build_dumbbell(DumbbellConfig(n_flows=1))
        with pytest.raises(ConfigurationError):
            net.add_host_pair(rtt=ms(5))

    def test_pair_is_routable_both_ways(self):
        net = build_dumbbell(DumbbellConfig(n_flows=1, seed=4))
        src, dst = net.add_host_pair(rtt=ms(80))
        sender = TCPSender(net.sim, src, 777, receiver_node_id=dst.node_id,
                           transfer_segments=5)
        TCPReceiver(net.sim, dst, 777, sender_node_id=src.node_id)
        sender.start()
        net.run(until=3.0)
        assert sender.completed
