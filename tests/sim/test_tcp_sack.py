"""TCP SACK: scoreboard, receiver blocks, and sender recovery."""

import pytest

from repro.sim.tcp import TCPConfig, TCPVariant
from repro.sim.tcp.sack import DUP_THRESHOLD, Scoreboard, sack_blocks_from_set

from tests.sim.tcp_harness import TCPHarness


def sack_config(**overrides):
    params = dict(
        variant=TCPVariant.SACK,
        delayed_ack=1,
        min_rto=0.2,
        initial_rto=0.3,
        initial_cwnd=16.0,
        initial_ssthresh=64.0,
    )
    params.update(overrides)
    return TCPConfig(**params)


class TestSackBlocks:
    def test_empty_set(self):
        assert sack_blocks_from_set(set()) == ()

    def test_single_run(self):
        assert sack_blocks_from_set({5, 6, 7}) == ((5, 7),)

    def test_multiple_runs_highest_first(self):
        blocks = sack_blocks_from_set({3, 4, 8, 12, 13})
        assert blocks == ((12, 13), (8, 8), (3, 4))

    def test_caps_at_three_blocks(self):
        blocks = sack_blocks_from_set({1, 3, 5, 7, 9})
        assert len(blocks) == 3
        assert blocks[0] == (9, 9)

    def test_singleton(self):
        assert sack_blocks_from_set({42}) == ((42, 42),)


class TestScoreboard:
    def test_record_and_query(self):
        board = Scoreboard()
        added = board.record([(5, 7)], cumack=2)
        assert added == 3
        assert board.is_sacked(6)
        assert not board.is_sacked(4)

    def test_advance_forgets_covered(self):
        board = Scoreboard()
        board.record([(5, 7)], cumack=2)
        board.advance(6)
        assert not board.is_sacked(5)
        assert board.is_sacked(7)

    def test_is_lost_needs_dupthresh_above(self):
        board = Scoreboard()
        board.record([(6, 7)], cumack=4)
        assert not board.is_lost(5)   # only 2 SACKed above
        board.record([(9, 9)], cumack=4)
        assert board.is_lost(5)       # now 3 above
        assert not board.is_lost(6)   # SACKed segments are not lost

    def test_dup_threshold_constant(self):
        assert DUP_THRESHOLD == 3

    def test_next_lost_hole_ordering(self):
        board = Scoreboard()
        board.record([(6, 6), (8, 8), (10, 10), (12, 12)], cumack=4)
        assert board.next_lost_hole(cumack=4, highest_sent=12) == 5
        board.mark_retransmitted(5)
        assert board.next_lost_hole(cumack=4, highest_sent=12) == 7

    def test_pipe_accounting(self):
        board = Scoreboard()
        # sent 5..12 (8 outstanding), 6,8,10 SACKed.
        board.record([(6, 6), (8, 8), (10, 10)], cumack=4)
        # 5 is lost (3 SACKed above); 7 has only two above, so it still
        # counts as in flight, as do 9, 11, 12.
        pipe = board.pipe(cumack=4, highest_sent=12)
        assert pipe == 8 - 3 - 1
        board.mark_retransmitted(5)
        assert board.pipe(cumack=4, highest_sent=12) == 8 - 3

    def test_reset(self):
        board = Scoreboard()
        board.record([(5, 9)], cumack=2)
        board.mark_retransmitted(4)
        board.reset()
        assert board.sacked_count == 0
        assert not board.was_retransmitted(4)


class TestSackReceiver:
    def test_dup_acks_carry_blocks(self):
        h = TCPHarness(sack_config())
        h.drop_seqs({5})
        h.start()
        h.run(1.0)
        sacked = [p for p in h.receiver_node.sent
                  if p.ack is not None and p.sack]
        assert sacked, "expected SACK blocks on duplicate ACKs"
        # Every block starts above the hole.
        for packet in sacked:
            assert all(start > 5 for start, _end in packet.sack
                       if packet.ack == 4)

    def test_non_sack_variant_sends_no_blocks(self):
        h = TCPHarness(TCPConfig(variant=TCPVariant.NEWRENO, delayed_ack=1,
                                 initial_rto=0.3, initial_cwnd=16.0))
        h.drop_seqs({5})
        h.start()
        h.run(1.0)
        assert all(not p.sack for p in h.receiver_node.sent)


class TestSackSender:
    def test_lossless_transfer(self):
        h = TCPHarness(sack_config())
        h.start()
        h.run(5.0)
        assert h.sender.retransmissions == 0
        assert h.sender.timeouts == 0
        assert h.sender.acked_segments > 1000

    def test_single_loss_single_retransmission(self):
        h = TCPHarness(sack_config())
        h.drop_seqs({20})
        h.start()
        h.run(2.0)
        assert h.sender.fast_retransmits == 1
        assert h.sender.timeouts == 0
        assert h.sender.retransmissions == 1
        assert h.sender.cumack > 20

    def test_scattered_losses_one_episode(self):
        """SACK's signature: many holes repaired in one recovery."""
        h = TCPHarness(sack_config())
        h.drop_seqs({20, 22, 24, 26})
        h.start()
        h.run(3.0)
        assert h.sender.fast_retransmits == 1
        assert h.sender.timeouts == 0
        assert h.sender.retransmissions == 4  # exactly the lost segments
        assert h.sender.cumack > 26

    def test_window_halves_once_per_episode(self):
        h = TCPHarness(sack_config(initial_cwnd=20.0, initial_ssthresh=20.0))
        h.drop_seqs({30, 32, 34})
        h.start()
        h.run(3.0)
        # One multiplicative decrease for the whole burst of losses.
        assert h.sender.ssthresh >= 0.5 * 20.0 - 3.0

    def test_outperforms_newreno_under_scattered_loss(self):
        """SACK repairs k losses in ~1 RTT; NewReno needs ~k RTTs."""
        goodput = {}
        for variant in (TCPVariant.SACK, TCPVariant.NEWRENO):
            h = TCPHarness(sack_config(variant=variant), one_way=0.1)
            h.drop_seqs({30, 33, 36, 39, 42, 45})
            h.start()
            h.run(4.0)
            goodput[variant] = h.sender.acked_segments
        assert goodput[TCPVariant.SACK] >= goodput[TCPVariant.NEWRENO]

    def test_full_window_loss_still_times_out(self):
        h = TCPHarness(sack_config(initial_cwnd=4.0))
        h.drop_seqs({0, 1, 2, 3})
        h.start()
        h.run(5.0)
        assert h.sender.timeouts >= 1
        assert h.sender.acked_segments > 50  # recovers afterwards

    def test_scoreboard_cleared_after_timeout(self):
        h = TCPHarness(sack_config(initial_cwnd=4.0))
        h.drop_seqs({0, 1, 2, 3})
        h.start()
        h.run(5.0)
        # After full recovery nothing stale may linger below cumack.
        assert h.sender.scoreboard.pipe(
            h.sender.cumack, h.sender.highest_sent
        ) >= 0
