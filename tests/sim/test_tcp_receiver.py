"""TCP receiver: cumulative ACKs, dup ACKs, delayed ACKs, echo rules."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.packet import Packet, PacketKind
from repro.sim.tcp import TCPConfig, TCPReceiver

from tests.sim.tcp_harness import WireNode


@pytest.fixture
def setup(sim):
    """A receiver on a wire node; sent ACKs are captured, not delivered."""
    node = WireNode(sim, 1)
    node.connect(WireNode(sim, 0), 0.01)

    def make(config=None):
        return TCPReceiver(sim, node, flow_id=1, sender_node_id=0,
                           config=config or TCPConfig(delayed_ack=1))

    return sim, node, make


def data(seq, sent_at=0.0, retransmit=False):
    return Packet(PacketKind.DATA, flow_id=1, src=0, dst=1,
                  size_bytes=1500.0, seq=seq, sent_at=sent_at,
                  retransmit=retransmit)


def acks(node):
    return [p for p in node.sent if p.kind is PacketKind.ACK]


class TestInOrder:
    def test_each_segment_acked_immediately_d1(self, setup):
        sim, node, make = setup
        receiver = make()
        for seq in range(4):
            receiver.receive(data(seq))
        assert [p.ack for p in acks(node)] == [0, 1, 2, 3]

    def test_delayed_ack_every_other_segment(self, setup):
        sim, node, make = setup
        receiver = make(TCPConfig(delayed_ack=2))
        for seq in range(4):
            receiver.receive(data(seq))
        assert [p.ack for p in acks(node)] == [1, 3]

    def test_delack_timer_flushes_odd_segment(self, setup):
        sim, node, make = setup
        receiver = make(TCPConfig(delayed_ack=2, delack_timeout=0.1))
        receiver.receive(data(0))
        assert acks(node) == []
        sim.run(until=0.2)
        assert [p.ack for p in acks(node)] == [0]

    def test_bytes_received_counted(self, setup):
        _sim, _node, make = setup
        receiver = make()
        for seq in range(3):
            receiver.receive(data(seq))
        assert receiver.bytes_received == 3 * 1460


class TestOutOfOrder:
    def test_gap_produces_duplicate_acks(self, setup):
        sim, node, make = setup
        receiver = make()
        receiver.receive(data(0))
        receiver.receive(data(2))
        receiver.receive(data(3))
        receiver.receive(data(4))
        # ACK 0, then three dup ACKs of 0.
        assert [p.ack for p in acks(node)] == [0, 0, 0, 0]

    def test_fill_hole_acks_cumulatively(self, setup):
        sim, node, make = setup
        receiver = make()
        for seq in (0, 2, 3, 1):
            receiver.receive(data(seq))
        assert acks(node)[-1].ack == 3

    def test_partial_fill_acks_next_hole(self, setup):
        sim, node, make = setup
        receiver = make()
        for seq in (0, 2, 4, 1):
            receiver.receive(data(seq))
        # After 1 arrives, 0-2 contiguous but 3 missing.
        assert acks(node)[-1].ack == 2

    def test_duplicate_data_reacked(self, setup):
        sim, node, make = setup
        receiver = make()
        receiver.receive(data(0))
        receiver.receive(data(0))
        assert receiver.duplicate_segments == 1
        assert [p.ack for p in acks(node)] == [0, 0]

    def test_buffered_duplicate_detected(self, setup):
        _sim, node, make = setup
        receiver = make()
        receiver.receive(data(0))
        receiver.receive(data(5))
        receiver.receive(data(5))
        assert receiver.duplicate_segments == 1


class TestTimestampEcho:
    def test_fresh_segment_timestamp_echoed(self, setup):
        _sim, node, make = setup
        receiver = make()
        receiver.receive(data(0, sent_at=1.25))
        assert acks(node)[0].sent_at == 1.25

    def test_retransmitted_segment_not_echoed(self, setup):
        _sim, node, make = setup
        receiver = make()
        receiver.receive(data(0, sent_at=1.25, retransmit=True))
        assert acks(node)[0].sent_at == -1.0

    def test_dup_ack_not_echoed(self, setup):
        _sim, node, make = setup
        receiver = make()
        receiver.receive(data(0, sent_at=1.0))
        receiver.receive(data(5, sent_at=2.0))
        assert acks(node)[1].sent_at == -1.0

    def test_non_data_packets_ignored(self, setup):
        _sim, node, make = setup
        receiver = make()
        receiver.receive(Packet(PacketKind.ATTACK, flow_id=1, src=0, dst=1,
                                size_bytes=1500.0))
        assert receiver.segments_received == 0
        assert acks(node) == []
