"""The Fig. 5 dumbbell builder."""

import numpy as np
import pytest

from repro.core.attack import PulseTrain
from repro.sim.queues import DropTailQueue, REDQueue
from repro.sim.topology import (
    DumbbellConfig,
    build_dumbbell,
    make_droptail_queue,
    make_red_queue,
)
from repro.util.errors import ConfigurationError
from repro.util.units import mbps, ms


class TestConfig:
    def test_defaults_match_paper(self):
        config = DumbbellConfig()
        assert config.access_rate_bps == mbps(50)
        assert config.bottleneck_rate_bps == mbps(15)
        assert config.rtt_min == ms(20)
        assert config.rtt_max == ms(460)

    def test_flow_rtts_span_range(self):
        config = DumbbellConfig(n_flows=10)
        rtts = config.flow_rtts()
        assert rtts[0] == pytest.approx(ms(20))
        assert rtts[-1] == pytest.approx(ms(460))
        assert len(rtts) == 10
        assert np.all(np.diff(rtts) > 0)

    def test_single_flow_gets_mean_rtt(self):
        config = DumbbellConfig(n_flows=1)
        assert config.flow_rtts()[0] == pytest.approx(ms(240))

    def test_zero_flows_rejected(self):
        with pytest.raises(ConfigurationError):
            DumbbellConfig(n_flows=0)

    def test_inverted_rtt_range_rejected(self):
        with pytest.raises(ConfigurationError):
            DumbbellConfig(rtt_min=ms(100), rtt_max=ms(50))

    def test_rtt_too_small_for_fixed_delay(self):
        with pytest.raises(ConfigurationError, match="RTT"):
            build_dumbbell(DumbbellConfig(rtt_min=ms(5), rtt_max=ms(100)))


class TestConstruction:
    def test_queue_factories(self):
        red_net = build_dumbbell(DumbbellConfig(queue_factory=make_red_queue))
        dt_net = build_dumbbell(
            DumbbellConfig(queue_factory=make_droptail_queue)
        )
        assert isinstance(red_net.bottleneck_queue, REDQueue)
        assert isinstance(dt_net.bottleneck_queue, DropTailQueue)

    def test_red_thresholds_from_buffer(self):
        net = build_dumbbell(DumbbellConfig(buffer_bytes=100 * 1500.0))
        queue = net.bottleneck_queue
        assert queue.min_th == pytest.approx(20.0)   # 0.2 * 100 pkts
        assert queue.max_th == pytest.approx(80.0)
        assert queue.gentle

    def test_node_count(self):
        net = build_dumbbell(DumbbellConfig(n_flows=5))
        assert len(net.sender_nodes) == 5
        assert len(net.receiver_nodes) == 5
        assert net.attacker_node.node_id == 12
        assert net.attack_sink_node.node_id == 13

    def test_data_reaches_receivers(self):
        net = build_dumbbell(DumbbellConfig(n_flows=3))
        net.start_flows(stagger=0.0)
        net.run(until=3.0)
        for receiver in net.receivers:
            assert receiver.segments_received > 0

    def test_goodput_snapshot_shape(self):
        net = build_dumbbell(DumbbellConfig(n_flows=4))
        net.start_flows()
        net.run(until=2.0)
        snapshot = net.goodput_snapshot()
        assert snapshot.shape == (4,)
        assert snapshot.sum() == net.aggregate_goodput_bytes()


class TestAttackPath:
    def test_attack_traverses_bottleneck(self):
        net = build_dumbbell(DumbbellConfig(n_flows=2))
        seen = []
        net.bottleneck.monitors.append(
            lambda pkt, now, ok: seen.append(pkt) if pkt.is_attack else None
        )
        train = PulseTrain.uniform(0.02, mbps(20), 0.0, n_pulses=1)
        net.add_attack(train).start()
        net.run(until=1.0)
        assert len(seen) > 0

    def test_attack_packets_terminate_at_sink(self):
        net = build_dumbbell(DumbbellConfig(n_flows=2))
        train = PulseTrain.uniform(0.02, mbps(20), 0.0, n_pulses=1)
        source = net.add_attack(train)
        source.start()
        net.run(until=1.0)
        assert net.attack_sink_node.undeliverable == 0
        assert net.router_r.undeliverable == 0

    def test_multiple_attacks_get_distinct_flows(self):
        net = build_dumbbell(DumbbellConfig(n_flows=2))
        train = PulseTrain.uniform(0.02, mbps(20), 0.0, n_pulses=1)
        first = net.add_attack(train)
        second = net.add_attack(train)
        assert first.flow_id != second.flow_id

    def test_attack_degrades_goodput(self):
        def run(with_attack):
            net = build_dumbbell(DumbbellConfig(n_flows=5, seed=9))
            net.start_flows()
            net.run(until=5.0)
            before = net.aggregate_goodput_bytes()
            if with_attack:
                train = PulseTrain.uniform(ms(100), mbps(30), ms(200),
                                           n_pulses=40)
                net.add_attack(train, start_time=5.0).start()
            net.run(until=15.0)
            return net.aggregate_goodput_bytes() - before

        clean = run(False)
        attacked = run(True)
        assert attacked < 0.7 * clean


class TestRTTRealization:
    def test_measured_rtt_matches_configuration(self, ):
        """The built topology must realize the configured propagation RTT."""
        config = DumbbellConfig(n_flows=3)
        net = build_dumbbell(config)
        rtts = config.flow_rtts()
        for i in range(3):
            forward = (
                net.sender_links[i].delay
                + net.bottleneck.delay
                + net.receiver_links[i].delay
            )
            reverse = (
                net.receiver_return_links[i].delay
                + net.reverse_bottleneck.delay
                + net.sender_return_links[i].delay
            )
            assert forward + reverse == pytest.approx(rtts[i])
