"""A controllable two-endpoint harness for TCP unit tests.

Real links introduce queueing that makes precise loss placement hard; this
harness wires a sender and a receiver over ideal fixed-delay "wires" whose
drop behaviour the test controls per packet, so individual TCP mechanisms
(fast retransmit, partial ACKs, RTO backoff, ...) can be exercised exactly.
"""

from typing import Callable, List, Optional

from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.sim.tcp import TCPConfig, TCPReceiver, TCPSender
from repro.util.errors import ConfigurationError


class WireNode:
    """Implements just enough of the Node interface for TCP agents."""

    def __init__(self, sim: Simulator, node_id: int) -> None:
        self.sim = sim
        self.node_id = node_id
        self._agents = {}
        self._peer: Optional["WireNode"] = None
        self.delay = 0.05
        #: test hook: return True to drop the packet (checked on send).
        self.drop_filter: Callable[[Packet], bool] = lambda packet: False
        self.sent: List[Packet] = []

    def connect(self, peer: "WireNode", delay: float) -> None:
        self._peer = peer
        self.delay = delay

    def register_agent(self, flow_id: int, deliver) -> None:
        if flow_id in self._agents:
            raise ConfigurationError(f"duplicate agent for flow {flow_id}")
        self._agents[flow_id] = deliver

    def send(self, packet: Packet) -> None:
        self.sent.append(packet)
        if self.drop_filter(packet):
            return
        assert self._peer is not None
        self.sim.schedule(self.delay, self._peer.deliver, packet)

    def deliver(self, packet: Packet) -> None:
        agent = self._agents.get(packet.flow_id)
        if agent is not None:
            agent(packet)


class TCPHarness:
    """One TCP flow across two wires with a controllable one-way delay.

    The propagation RTT is ``2 * one_way``; install loss with
    ``harness.drop_seqs({5, 6})`` (drops the *first* transmission of the
    given data sequence numbers) or set ``sender_node.drop_filter``
    directly for full control.
    """

    def __init__(self, config: Optional[TCPConfig] = None,
                 one_way: float = 0.05) -> None:
        self.sim = Simulator()
        self.sender_node = WireNode(self.sim, 0)
        self.receiver_node = WireNode(self.sim, 1)
        self.sender_node.connect(self.receiver_node, one_way)
        self.receiver_node.connect(self.sender_node, one_way)
        self.config = config if config is not None else TCPConfig()
        self.sender = TCPSender(self.sim, self.sender_node, flow_id=1,
                                receiver_node_id=1, config=self.config)
        self.receiver = TCPReceiver(self.sim, self.receiver_node, flow_id=1,
                                    sender_node_id=0, config=self.config)
        self.rtt = 2 * one_way

    def drop_seqs(self, seqs) -> None:
        """Drop the first transmission of each listed data segment."""
        pending = set(seqs)

        def drop(packet: Packet) -> bool:
            if packet.seq in pending and not packet.retransmit:
                pending.discard(packet.seq)
                return True
            return False

        self.sender_node.drop_filter = drop

    def run(self, duration: float) -> None:
        self.sim.run(until=self.sim.now + duration)

    def start(self) -> None:
        self.sender.start()
