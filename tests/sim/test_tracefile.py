"""ns-2-style trace writing and parsing."""

import io

import pytest

from repro.core.attack import PulseTrain
from repro.sim.tracefile import TraceRecord, TraceWriter, read_trace
from repro.sim.packet import PacketKind
from repro.sim.topology import DumbbellConfig, build_dumbbell
from repro.util.errors import ValidationError
from repro.util.units import mbps, ms


@pytest.fixture(scope="module")
def traced_run():
    """A short attacked run with the bottleneck traced."""
    buffer = io.StringIO()
    writer = TraceWriter(buffer)
    net = build_dumbbell(DumbbellConfig(n_flows=3, seed=2))
    writer.attach(net.bottleneck)
    net.start_flows()
    train = PulseTrain.uniform(ms(50), mbps(30), ms(450), n_pulses=6)
    net.add_attack(train, start_time=1.0).start()
    net.run(until=4.0)
    writer.close()
    return buffer.getvalue(), net, writer


class TestWriter:
    def test_lines_written(self, traced_run):
        text, _net, writer = traced_run
        assert writer.lines_written > 100
        assert writer.lines_written == len(text.strip().splitlines())

    def test_line_format(self, traced_run):
        text, _net, _writer = traced_run
        fields = text.splitlines()[0].split()
        assert len(fields) == 12
        assert fields[0] in ("+", "d")
        assert fields[6] == "-------"

    def test_drop_lines_match_link_stats(self, traced_run):
        text, net, _writer = traced_run
        drops = sum(1 for line in text.splitlines() if line.startswith("d"))
        assert drops == net.bottleneck.packets_dropped


class TestRoundTrip:
    def test_parse_back(self, traced_run):
        text, _net, writer = traced_run
        records = read_trace(io.StringIO(text))
        assert len(records) == writer.lines_written
        assert all(isinstance(r, TraceRecord) for r in records)

    def test_times_monotone(self, traced_run):
        text, _net, _writer = traced_run
        times = [r.time for r in read_trace(io.StringIO(text))]
        assert times == sorted(times)

    def test_attack_packets_typed(self, traced_run):
        text, _net, _writer = traced_run
        records = read_trace(io.StringIO(text))
        kinds = {r.kind for r in records}
        assert PacketKind.DATA in kinds
        assert PacketKind.ATTACK in kinds

    def test_endpoints_are_routers(self, traced_run):
        text, _net, _writer = traced_run
        records = read_trace(io.StringIO(text))
        assert all(r.from_node == 0 and r.to_node == 1 for r in records)

    def test_seq_preserved(self, traced_run):
        text, _net, _writer = traced_run
        data = [r for r in read_trace(io.StringIO(text))
                if r.kind is PacketKind.DATA]
        assert all(r.seq is not None and r.seq >= 0 for r in data)

    def test_dropped_property(self):
        record = read_trace(["d 1.0 0 1 tcp 1500 ------- 3 2.0 5.0 7 99"])[0]
        assert record.dropped
        assert record.flow_id == 3
        assert record.uid == 99

    def test_comments_and_blanks_skipped(self):
        lines = ["# header", "", "+ 1.0 0 1 ack 40 ------- 1 5.0 2.0 -1 7"]
        records = read_trace(lines)
        assert len(records) == 1
        assert records[0].seq is None

    def test_malformed_line_rejected(self):
        with pytest.raises(ValidationError, match="12 fields"):
            read_trace(["+ 1.0 0 1 tcp"])

    def test_unknown_event_rejected(self):
        with pytest.raises(ValidationError, match="event"):
            read_trace(["? 1.0 0 1 tcp 1500 ------- 1 0.0 1.0 5 9"])

    def test_unknown_type_rejected(self):
        with pytest.raises(ValidationError, match="type"):
            read_trace(["+ 1.0 0 1 quic 1500 ------- 1 0.0 1.0 5 9"])


class TestFileOwnership:
    def test_to_path(self, tmp_path):
        path = tmp_path / "run.tr"
        writer = TraceWriter.to_path(path)
        net = build_dumbbell(DumbbellConfig(n_flows=1, seed=3))
        writer.attach(net.bottleneck)
        net.start_flows(stagger=0.0)
        net.run(until=1.0)
        writer.close()
        records = read_trace(str(path))
        assert records
