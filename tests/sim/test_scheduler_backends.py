"""Scheduler backends: calendar-queue edge cases and heap equivalence.

The engine promises bit-identical dispatch whichever backend runs
(strict ``(time, seq)`` total order).  These tests pin the promise at
the structure's seams: bucket boundaries, mid-bucket stops, zero-delay
storms, head cancellations, resize/compaction churn, auto-migration,
and a randomized heap-vs-calendar equivalence property test.
"""

import random

import pytest

from repro.sim.engine import (
    AUTO_CALENDAR_DEPTH,
    CalendarQueue,
    Event,
    HeapScheduler,
    Simulator,
    scheduler_builds,
)
from repro.util.errors import SimulationError, ValidationError


def calendar_sim() -> Simulator:
    return Simulator(scheduler="calendar")


class TestSelection:
    def test_explicit_backends(self):
        assert Simulator(scheduler="heap").scheduler == "heap"
        assert Simulator(scheduler="calendar").scheduler == "calendar"
        assert Simulator(scheduler="auto").scheduler == "heap"  # starts heap

    def test_unknown_backend_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(scheduler="splay-tree")

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", "calendar")
        assert Simulator().scheduler == "calendar"
        monkeypatch.setenv("REPRO_SCHEDULER", "bogus")
        # Environment parsing fails as a ValidationError naming the
        # variable (uniform across every REPRO_* knob); explicit
        # scheduler= arguments still raise SimulationError above.
        with pytest.raises(ValidationError, match="REPRO_SCHEDULER"):
            Simulator()

    def test_builds_counter_tracks_backends(self):
        before = scheduler_builds()
        Simulator(scheduler="heap")
        Simulator(scheduler="calendar")
        after = scheduler_builds()
        assert after["heap"] == before["heap"] + 1
        assert after["calendar"] == before["calendar"] + 1


class TestBucketBoundaries:
    def test_schedule_exactly_on_bucket_boundary(self):
        """Events at exact multiples of the bucket width stay ordered."""
        sim = calendar_sim()
        width = sim._sched.width
        fired = []
        # Interleave boundary-exact times with mid-bucket times.
        times = [k * width for k in range(1, 40)]
        times += [k * width + width / 3 for k in range(1, 40)]
        for t in sorted(times):
            sim.schedule_at(t, fired.append, t)
        sim.run()
        assert fired == sorted(times)

    def test_boundary_event_lands_in_front_when_due(self):
        """``int(t / width) <= cur_abs`` routes due pushes to the front."""
        sim = calendar_sim()
        sched = sim._sched
        fired = []

        def reschedule_same_time():
            # Scheduled mid-dispatch at the current time: its bucket
            # index equals the loaded one, so it must go to the front
            # and fire in this same run, in seq order.
            sim.schedule(0.0, fired.append, "nested")

        sim.schedule(1.0, reschedule_same_time)
        sim.schedule(1.0, fired.append, "direct")
        sim.run()
        assert fired == ["direct", "nested"]
        assert len(sched) == 0

    def test_sparse_far_future_jump(self):
        """A calendar holding only far-future timers skips ahead."""
        sim = calendar_sim()
        fired = []
        # Force a tiny width via a dense cluster, then drain it, leaving
        # only entries many ring revolutions away.
        for k in range(32):
            sim.schedule(1e-4 * (k + 1), lambda: None)
        sim.schedule(500.0, fired.append, "far")
        sim.schedule(900.0, fired.append, "farther")
        sim.run()
        assert fired == ["far", "farther"]
        assert sim.now == 900.0


class TestStopMidBucket:
    @pytest.mark.parametrize("scheduler", ["heap", "calendar"])
    def test_stop_preserves_remaining_entries(self, scheduler):
        sim = Simulator(scheduler=scheduler)
        fired = []
        # Five same-bucket events; the middle one stops the loop.
        for tag in range(5):
            sim.schedule(1.0, fired.append, tag)
            if tag == 2:
                sim.schedule(1.0, sim.stop)
        sim.run()
        assert fired == [0, 1, 2]
        assert sim.pending_events == 2
        # Resuming dispatches the rest in order, nothing lost.
        sim.run()
        assert fired == [0, 1, 2, 3, 4]
        assert sim.pending_events == 0

    def test_stop_mid_bucket_keeps_front_consistent(self):
        """After a stop, the calendar's front still holds loaded entries
        and a fresh run() picks up exactly where dispatch halted."""
        sim = calendar_sim()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(1.0, sim.stop)
        sim.schedule(1.0, fired.append, "b")
        sim.schedule(1.0 + sim._sched.width * 50, fired.append, "later")
        sim.run()
        assert fired == ["a"]
        digest_before = sim.state_digest()
        assert sim.run() == 2
        assert fired == ["a", "b", "later"]
        # The interrupted digest covered exactly the events that then ran.
        assert len(digest_before[2]) == 2


class TestZeroDelayStorm:
    @pytest.mark.parametrize("scheduler", ["heap", "calendar"])
    def test_zero_delay_chain_fifo(self, scheduler):
        sim = Simulator(scheduler=scheduler)
        fired = []

        def chain(n):
            fired.append(n)
            if n:
                sim.schedule(0.0, chain, n - 1)

        sim.schedule(1.0, chain, 500)
        sim.run()
        assert fired == list(range(500, -1, -1))
        assert sim.now == 1.0

    @pytest.mark.parametrize("scheduler", ["heap", "calendar"])
    def test_zero_delay_fan_out_orders_by_seq(self, scheduler):
        sim = Simulator(scheduler=scheduler)
        fired = []

        def fan_out():
            for tag in range(100):
                sim.schedule(0.0, fired.append, tag)

        sim.schedule(2.0, fan_out)
        sim.schedule(2.0, fired.append, "sibling")
        sim.run()
        assert fired == ["sibling"] + list(range(100))

    @pytest.mark.parametrize("scheduler", ["heap", "calendar"])
    def test_runaway_storm_hits_budget(self, scheduler):
        sim = Simulator(scheduler=scheduler)

        def forever():
            sim.schedule(0.0, forever)

        sim.schedule(0.5, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=1_000)
        assert sim.events_executed == 1_000


class TestHeadCancellation:
    @pytest.mark.parametrize("scheduler", ["heap", "calendar"])
    def test_cancel_head_entry_skips_it(self, scheduler):
        sim = Simulator(scheduler=scheduler)
        fired = []
        head = sim.schedule(1.0, fired.append, "head")
        sim.schedule(2.0, fired.append, "next")
        head.cancel()
        assert sim.pending_events == 1
        sim.run()
        assert fired == ["next"]
        assert sim.events_executed == 1

    def test_cancel_head_of_loaded_front(self):
        """Cancelling an entry the calendar already moved to its front."""
        sim = calendar_sim()
        fired = []
        handles = [sim.schedule(1.0, fired.append, tag) for tag in range(4)]
        stopper = sim.schedule(1.0, sim.stop)
        sim.run()  # loads the bucket into the front, then stops
        assert fired == list(range(4))
        del stopper
        later = [sim.schedule(1.0, fired.append, 10 + tag)
                 for tag in range(3)]
        later[0].cancel()  # head of the refilled front
        sim.run()
        assert fired == list(range(4)) + [11, 12]
        assert all(h.cancelled for h in handles)  # fired handles are inert

    @pytest.mark.parametrize("scheduler", ["heap", "calendar"])
    def test_cancel_after_firing_is_noop(self, scheduler):
        sim = Simulator(scheduler=scheduler)
        fired = []
        handle = sim.schedule(1.0, fired.append, "once")
        sim.run()
        handle.cancel()
        handle.cancel()
        assert fired == ["once"]
        assert sim.pending_events == 0
        assert sim.events_cancelled_skipped == 0


class TestResizeAndCompaction:
    def test_bucket_count_grows_and_shrinks(self):
        sim = calendar_sim()
        sched = sim._sched
        assert sched.nbuckets == CalendarQueue._MIN_BUCKETS
        rng = random.Random(5)
        for _ in range(2_000):
            sim.schedule(rng.uniform(0.0, 10.0), lambda: None)
        assert sched.nbuckets >= 1024
        grown = sched.resizes
        sim.run()
        assert sched.resizes > grown  # drained back down
        assert sched.nbuckets == CalendarQueue._MIN_BUCKETS

    def test_compaction_drops_cancelled_wholesale(self):
        sim = calendar_sim()
        sched = sim._sched
        keep = [sim.schedule(1.0 + k * 0.01, lambda: None)
                for k in range(50)]
        doomed = [sim.schedule(5.0 + k * 0.01, lambda: None)
                  for k in range(500)]
        for handle in doomed:
            handle.cancel()
        # Cancelled entries exceeded two thirds of pending: compacted
        # wholesale (the stragglers cancelled after the rebuild stay
        # below the _COMPACT_MIN re-trigger floor).
        assert sim.events_compacted >= 400
        assert sched.cancelled_pending < 64
        assert sim.pending_events == len(keep)
        assert sim.pending_entries == len(keep) + sched.cancelled_pending

    def test_heap_drains_cancelled_lazily(self):
        sim = Simulator(scheduler="heap")
        for k in range(100):
            sim.schedule(1.0 + k * 0.01, lambda: None).cancel()
        survivor = []
        sim.schedule(9.0, survivor.append, "live")
        # No auto-compaction on the heap: raw occupancy keeps the dead.
        assert sim.pending_entries == 101
        assert sim.pending_events == 1
        sim.run()
        assert survivor == ["live"]
        assert sim.events_cancelled_skipped == 100
        assert sim.events_executed == 1

    def test_heap_manual_compact(self):
        sim = Simulator(scheduler="heap")
        for k in range(100):
            sim.schedule(1.0 + k * 0.01, lambda: None).cancel()
        live = sim.schedule(2.0, lambda: None)
        sim._sched.compact()
        assert sim.pending_entries == sim.pending_events == 1
        digest = sim.state_digest()
        assert digest[2] == ((live.time, live.seq),)


class TestFreelist:
    def test_calendar_recycles_transient_entries(self):
        sim = calendar_sim()
        sched = sim._sched
        fired = []

        def tick(n):
            fired.append(n)
            if n:
                sim._push_transient(sim.now + 0.01, tick, (n - 1,))

        sim._push_transient(0.01, tick, (200,))
        sim.run()
        assert fired == list(range(200, -1, -1))
        assert sched.recycled >= 199  # every hop after the first reuses

    def test_heap_does_not_recycle(self):
        sim = Simulator(scheduler="heap")
        for k in range(50):
            sim._push_transient(0.01 * (k + 1), lambda: None, ())
        sim.run()
        assert sim._sched.recycled == 0
        assert sim._sched.free == []

    def test_event_handles_never_enter_freelist(self):
        sim = calendar_sim()
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        assert all(e.__class__ is not Event for e in sim._sched.free)
        assert handle.cancelled  # inert, but still a distinct object


class TestAutoMigration:
    def test_auto_migrates_past_threshold(self):
        sim = Simulator(scheduler="auto")
        for k in range(AUTO_CALENDAR_DEPTH + 1):
            sim.schedule(1.0 + k * 1e-4, lambda: None)
        assert sim.scheduler == "heap"  # not yet: checked on next entry
        sim.schedule(2.0, lambda: None)
        assert sim.scheduler == "calendar"
        assert sim._migrations == 1

    def test_migration_preserves_dispatch_and_digest(self):
        def build(scheduler):
            sim = Simulator(scheduler=scheduler)
            fired = []
            rng = random.Random(77)
            for _ in range(AUTO_CALENDAR_DEPTH + 50):
                t = rng.uniform(0.0, 5.0)
                sim.schedule(t, fired.append, round(t, 9))
            cancels = [sim.schedule(rng.uniform(0.0, 5.0), fired.append, "x")
                       for _ in range(100)]
            for handle in cancels:
                handle.cancel()
            return sim, fired

        heap_sim, heap_fired = build("heap")
        auto_sim, auto_fired = build("auto")
        auto_sim.schedule(6.0, lambda: None)  # trigger the migration
        heap_sim.schedule(6.0, lambda: None)
        assert auto_sim.scheduler == "calendar"
        assert auto_sim.state_digest() == heap_sim.state_digest()
        heap_sim.run()
        auto_sim.run()
        assert auto_fired == heap_fired
        assert auto_sim.events_executed == heap_sim.events_executed

    def test_small_scenarios_stay_on_heap(self):
        sim = Simulator(scheduler="auto")
        for _ in range(100):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.scheduler == "heap"
        assert sim._migrations == 0


class TestEquivalenceProperty:
    """Randomized heap-vs-calendar dispatch-order equivalence."""

    @staticmethod
    def _chaos_run(scheduler, seed):
        sim = Simulator(scheduler=scheduler)
        rng = random.Random(seed)
        trace = []
        handles = []

        def handler(tag):
            trace.append((round(sim.now, 12), tag))
            roll = rng.random()
            if roll < 0.55:
                sim.schedule(rng.uniform(0.0, 0.4), handler, tag + 1000)
            elif roll < 0.70:
                handles.append(
                    sim.schedule(rng.uniform(0.1, 2.0), handler, tag + 5000))
            elif roll < 0.85 and handles:
                handles.pop(rng.randrange(len(handles))).cancel()
            # else: leaf event

        for tag in range(300):
            sim.schedule(rng.uniform(0.0, 1.0), handler, tag)
        sim.run(until=3.0, max_events=100_000)
        return trace, sim

    @pytest.mark.parametrize("seed", [1, 17, 4242])
    def test_random_workloads_dispatch_identically(self, seed):
        heap_trace, heap_sim = self._chaos_run("heap", seed)
        cal_trace, cal_sim = self._chaos_run("calendar", seed)
        assert heap_trace == cal_trace
        assert heap_sim.events_executed == cal_sim.events_executed
        assert heap_sim.state_digest() == cal_sim.state_digest()
        assert heap_sim.pending_events == cal_sim.pending_events

    def test_digest_equal_after_identical_schedules(self):
        sims = [Simulator(scheduler=s) for s in ("heap", "calendar")]
        rng_times = [random.Random(3).uniform(0.0, 9.0) for _ in range(500)]
        for sim in sims:
            for t in rng_times:
                sim.schedule_at(t, lambda: None)
        assert sims[0].state_digest() == sims[1].state_digest()
