"""Packet model."""

from repro.sim.packet import ACK_SIZE_BYTES, Packet, PacketKind, TCP_HEADER_BYTES


class TestPacket:
    def make(self, kind=PacketKind.DATA, **kwargs):
        defaults = dict(flow_id=1, src=2, dst=3, size_bytes=1500.0)
        defaults.update(kwargs)
        return Packet(kind, **defaults)

    def test_uids_are_unique_and_increasing(self):
        first = self.make()
        second = self.make()
        assert second.uid > first.uid

    def test_attack_flag(self):
        assert self.make(PacketKind.ATTACK).is_attack
        assert not self.make(PacketKind.DATA).is_attack
        assert not self.make(PacketKind.ACK).is_attack
        assert not self.make(PacketKind.CBR).is_attack

    def test_defaults(self):
        packet = self.make()
        assert packet.seq is None
        assert packet.ack is None
        assert packet.retransmit is False
        assert packet.hops == 0

    def test_header_constants(self):
        assert TCP_HEADER_BYTES == 40
        assert ACK_SIZE_BYTES == 40

    def test_repr_includes_seq_and_ack(self):
        data = self.make(seq=7)
        ack = self.make(PacketKind.ACK, ack=9)
        assert "seq=7" in repr(data)
        assert "ack=9" in repr(ack)
