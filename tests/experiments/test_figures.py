"""Per-figure drivers (fast smoke-level runs; benches do the full sweeps)."""

import numpy as np
import pytest

from repro.experiments.fig01_cwnd import run_fig01
from repro.experiments.fig02_pattern import ideal_incoming_traffic, run_fig02
from repro.experiments.fig04_risk import run_fig04
from repro.experiments.fig06_09_gain import FIGURE_RATES, run_gain_figure
from repro.experiments.fig10_shrew import SHREW_CASES, _shrew_gammas
from repro.experiments.fig12_testbed import TESTBED_RATES
from repro.core.attack import PulseTrain
from repro.core.throughput import VictimPopulation
from repro.util.errors import ValidationError
from repro.util.units import mbps, ms


class TestFig01:
    def test_trajectory_tracks_analytic_transient(self):
        result = run_fig01(n_pulses=10)
        assert result.w_converged == pytest.approx(20.0 / 2)  # d=2, T=2, RTT=.2
        assert len(result.epochs) == 10
        # The first pre-attack window must match exactly (no pulses yet).
        t0, measured0, analytic0 = result.epochs[0]
        assert measured0 == pytest.approx(analytic0)

    def test_render_contains_wc(self):
        result = run_fig01(n_pulses=6)
        assert "W_c" in result.render()


class TestFig02:
    def test_period_recovered_from_model_series(self):
        result = run_fig02()
        assert result.report.consistent_with(result.attack_period)
        assert result.report.acf_period == pytest.approx(2.0, rel=0.1)

    def test_ideal_series_rates(self):
        train = PulseTrain.uniform(0.05, mbps(100), 1.95, n_pulses=4)
        victims = VictimPopulation(rtts=[0.1, 0.2], delayed_ack=2)
        series = ideal_incoming_traffic(train, victims, bin_width=0.01)
        # During a pulse the series must dwarf the between-pulse level.
        assert series[:5].mean() > 10 * series[20:100].mean()


class TestFig04:
    def test_curve_family(self):
        curves = run_fig04(kappas=(0.5, 1.0, 3.0), n_points=5)
        assert set(curves.curves) == {0.5, 1.0, 3.0}
        for values in curves.curves.values():
            assert values[0] == 1.0
            assert values[-1] == 0.0

    def test_render(self):
        assert "risk" in run_fig04().render()


class TestFig0609Config:
    def test_figure_rates_match_paper(self):
        assert FIGURE_RATES == {6: mbps(25), 7: mbps(30), 8: mbps(35),
                                9: mbps(40)}

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValidationError):
            run_gain_figure(5)

    def test_tiny_run_structure(self):
        fig = run_gain_figure(6, flow_counts=[5], extents=[ms(100)],
                              gammas=[0.4, 0.6])
        assert list(fig.panels) == [5]
        curves = fig.panels[5]
        assert len(curves) == 1
        assert len(curves[0].points) == 2
        assert "Fig. 6" in fig.render()


class TestFig10Config:
    def test_cases_match_paper(self):
        labels = [label for label, _, _ in SHREW_CASES]
        assert any("30M" in label for label in labels)
        assert any("40M" in label for label in labels)
        assert any("50M" in label for label in labels)

    def test_shrew_gammas_land_on_harmonics(self):
        gammas = _shrew_gammas(mbps(30), ms(100), bottleneck_bps=mbps(15),
                               min_rto=1.0)
        assert gammas == pytest.approx([0.2, 0.4, 0.6, 0.8])
        # Each produces a period on a minRTO harmonic.
        for gamma in gammas:
            period = 30e6 * 0.1 / (gamma * 15e6)
            assert any(
                abs(period - 1.0 / n) < 1e-9 for n in range(1, 6)
            )


class TestFig12Config:
    def test_rates_match_paper(self):
        assert list(TESTBED_RATES) == [mbps(15), mbps(20), mbps(30)]
