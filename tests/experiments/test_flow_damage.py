"""Per-flow damage experiment and the victim-variant ablation."""

import numpy as np
import pytest

from repro.core.timeout_model import FlowRegime
from repro.experiments.ablation_victim import run_victim_ablation
from repro.experiments.flow_damage import run_flow_damage
from repro.sim.tcp import TCPVariant


class TestFlowDamage:
    @pytest.fixture(scope="class")
    def report(self):
        return run_flow_damage(n_flows=8, window=12.0)

    def test_one_record_per_flow(self, report):
        assert len(report.damages) == 8
        assert len(report.regimes) == 8

    def test_rtts_ascending(self, report):
        rtts = [d.rtt for d in report.damages]
        assert rtts == sorted(rtts)

    def test_every_flow_degraded(self, report):
        assert all(d.degradation > 0.1 for d in report.damages)

    def test_fairness_indices_valid(self, report):
        n = len(report.damages)
        for value in (report.fairness_before, report.fairness_during):
            assert 1.0 / n - 1e-9 <= value <= 1.0 + 1e-9

    def test_regimes_from_model(self, report):
        assert all(isinstance(r, FlowRegime) for r in report.regimes)

    def test_render(self, report):
        text = report.render()
        assert "Jain fairness" in text
        assert "RTT" in text


class TestVictimAblation:
    @pytest.fixture(scope="class")
    def ablation(self):
        return run_victim_ablation(
            gammas=[0.5],
            variants=(TCPVariant.NEWRENO, TCPVariant.SACK),
        )

    def test_all_variants_swept(self, ablation):
        assert set(ablation.curves) == {TCPVariant.NEWRENO, TCPVariant.SACK}

    def test_attack_effective_against_every_variant(self, ablation):
        """The paper's leverage is the AIMD law, not a recovery detail."""
        for variant in ablation.curves:
            assert ablation.mean_degradation(variant) > 0.3

    def test_sack_no_worse_than_newreno(self, ablation):
        assert (
            ablation.mean_degradation(TCPVariant.SACK)
            <= ablation.mean_degradation(TCPVariant.NEWRENO) + 0.05
        )

    def test_render(self, ablation):
        assert "victim TCP variant" in ablation.render()
