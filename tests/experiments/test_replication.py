"""Multi-seed replication statistics."""

import pytest

from repro.experiments.base import DumbbellPlatform
from repro.experiments.replication import replicate_gain_sweep
from repro.util.errors import ValidationError


@pytest.fixture(scope="module")
def replicated():
    return replicate_gain_sweep(
        seeds=(3, 5, 7),
        platform_factory=lambda seed: DumbbellPlatform(n_flows=5, seed=seed),
        gammas=[0.5, 0.8],
        warmup=3.0,
        window=8.0,
    )


class TestReplication:
    def test_point_per_gamma(self, replicated):
        assert [p.gamma for p in replicated.points] == [0.5, 0.8]

    def test_ci_brackets_mean(self, replicated):
        for p in replicated.points:
            assert p.ci_low <= p.mean_gain <= p.ci_high
            assert p.ci_contains(p.mean_gain)

    def test_mean_is_sample_mean(self, replicated):
        for index, p in enumerate(replicated.points):
            samples = [
                c.points[index].measured_gain for c in replicated.curves
            ]
            assert p.mean_gain == pytest.approx(sum(samples) / len(samples))

    def test_seeds_counted(self, replicated):
        assert all(p.n_seeds == 3 for p in replicated.points)

    def test_render(self, replicated):
        text = replicated.render()
        assert "95% CI" in text
        assert "seed" in text.lower()

    def test_max_ci_width_nonnegative(self, replicated):
        assert replicated.max_ci_width() >= 0.0

    def test_needs_two_seeds(self):
        with pytest.raises(ValidationError):
            replicate_gain_sweep(seeds=(1,), gammas=[0.5])

    def test_confidence_validated(self):
        with pytest.raises(ValidationError):
            replicate_gain_sweep(seeds=(1, 2), confidence=1.5, gammas=[0.5])
