"""The mice-vs-elephants experiment."""

import pytest

from repro.experiments.mice_elephants import run_mice_elephants


@pytest.fixture(scope="module")
def result():
    return run_mice_elephants(window=18.0, n_elephants=6)


class TestMiceElephants:
    def test_elephants_degraded(self, result):
        assert result.elephant_degradation() > 0.3

    def test_mice_tail_inflates(self, result):
        """The attack's interactive damage: tail FCT grows by RTO-scale."""
        assert result.attacked.fct_p90 > result.baseline.fct_p90
        assert result.mice_p90_inflation() > 1.2

    def test_mice_population_sizes_match(self, result):
        # Same seed => the same launch schedule in both conditions.
        assert result.attacked.mice_launched == result.baseline.mice_launched

    def test_most_mice_complete_in_baseline(self, result):
        assert (result.baseline.mice_completed
                >= 0.8 * result.baseline.mice_launched)

    def test_render(self, result):
        text = result.render()
        assert "FCT p90" in text
        assert "elephant" in text
