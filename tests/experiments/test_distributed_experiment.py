"""The distributed-deployment experiment."""

import pytest

from repro.experiments.distributed_attack import run_distributed_attack


@pytest.fixture(scope="module")
def result():
    return run_distributed_attack(n_sources=4, window=12.0)


class TestDistributedAttack:
    def test_three_deployments(self, result):
        assert set(result.outcomes) == {"single", "synchronized",
                                        "interleaved"}

    def test_damage_equivalent_across_deployments(self, result):
        """Same bottleneck byte schedule -> same victim damage."""
        degradations = [o.degradation for o in result.outcomes.values()]
        assert max(degradations) - min(degradations) < 0.15

    def test_all_deployments_damage(self, result):
        for outcome in result.outcomes.values():
            assert outcome.degradation > 0.3

    def test_single_source_flagged(self, result):
        assert result.outcomes["single"].flagged_sources == 1

    def test_split_sources_evade(self, result):
        assert result.outcomes["synchronized"].flagged_sources == 0
        assert result.outcomes["interleaved"].flagged_sources == 0

    def test_per_source_gamma_divided(self, result):
        single = result.outcomes["single"].per_source_gamma
        for name in ("synchronized", "interleaved"):
            assert result.outcomes[name].per_source_gamma == pytest.approx(
                single / 4, rel=1e-6
            )

    def test_render(self, result):
        text = result.render()
        assert "deployment" in text
        assert "single" in text
