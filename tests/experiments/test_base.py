"""Experiment machinery: platforms, sweeps, renderers."""

import numpy as np
import pytest

from repro.core.classify import GainRegime
from repro.experiments.base import (
    DumbbellPlatform,
    TestbedPlatform,
    default_gammas,
    full_scale,
    render_curve_table,
    run_gain_sweep,
)
from repro.util.errors import ValidationError
from repro.util.units import mbps, ms


class TestScaleSwitch:
    def test_default_is_scaled_down(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert not full_scale()
        assert len(default_gammas()) == 5

    def test_full_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert full_scale()
        assert len(default_gammas()) == 9

    def test_explicit_count(self):
        assert len(default_gammas(3)) == 3


class TestPlatforms:
    def test_dumbbell_victims_match_topology(self):
        platform = DumbbellPlatform(n_flows=7)
        victims = platform.victim_population()
        assert victims.n_flows == 7
        assert victims.delayed_ack == 2          # the analysis d
        assert platform.min_rto == 1.0           # ns-2 default
        assert platform.bottleneck_bps == mbps(15)

    def test_testbed_victims_match_topology(self):
        platform = TestbedPlatform(n_flows=4)
        victims = platform.victim_population()
        assert victims.n_flows == 4
        assert platform.min_rto == pytest.approx(0.2)
        assert platform.bottleneck_bps == mbps(10)

    def test_dumbbell_queue_choices(self):
        DumbbellPlatform(queue="red")
        DumbbellPlatform(queue="droptail")
        with pytest.raises(ValidationError):
            DumbbellPlatform(queue="codel")

    def test_measure_goodput_baseline_positive(self):
        platform = DumbbellPlatform(n_flows=3)
        goodput = platform.measure_goodput(None, warmup=2.0, window=4.0)
        assert goodput > 0

    def test_measurement_is_deterministic(self):
        platform = DumbbellPlatform(n_flows=3, seed=5)
        first = platform.measure_goodput(None, warmup=2.0, window=3.0)
        second = platform.measure_goodput(None, warmup=2.0, window=3.0)
        assert first == second


class TestGainSweep:
    @pytest.fixture(scope="class")
    def curve(self):
        platform = DumbbellPlatform(n_flows=5, seed=21)
        return run_gain_sweep(
            platform,
            rate_bps=mbps(30),
            extent=ms(100),
            gammas=[0.3, 0.5, 0.7],
            warmup=3.0,
            window=8.0,
            label="unit-test",
        )

    def test_points_cover_gammas(self, curve):
        assert [p.gamma for p in curve.points] == [0.3, 0.5, 0.7]

    def test_periods_follow_eq4(self, curve):
        for point in curve.points:
            expected = 30e6 * 0.1 / (point.gamma * 15e6)
            assert point.period == pytest.approx(expected)

    def test_measured_degradation_in_unit_range(self, curve):
        for point in curve.points:
            assert -0.5 < point.measured_degradation <= 1.0

    def test_attack_actually_degrades(self, curve):
        assert max(p.measured_degradation for p in curve.points) > 0.2

    def test_gain_is_degradation_times_risk(self, curve):
        for point in curve.points:
            expected = point.measured_degradation * (1 - point.gamma)
            assert point.measured_gain == pytest.approx(expected)

    def test_classification_present(self, curve):
        assert curve.comparison.regime in GainRegime

    def test_render_table_mentions_label(self, curve):
        table = render_curve_table([curve], title="My title")
        assert "My title" in table
        assert "unit-test" in table
        assert "gamma" in table

    def test_peaks(self, curve):
        peak = curve.peak_measured()
        assert peak.measured_gain == max(p.measured_gain for p in curve.points)

    def test_arrays(self, curve):
        assert curve.gammas().shape == (3,)
        assert curve.analytic().shape == (3,)
        assert curve.measured().shape == (3,)

    def test_plot_renders_both_series(self, curve):
        text = curve.plot()
        assert "measured" in text
        assert "analytic" in text
        assert "|" in text
