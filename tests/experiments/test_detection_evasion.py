"""The detection-evasion experiment (structure; the bench checks claims)."""

import pytest

from repro.experiments.detection_evasion import run_detection_evasion


@pytest.fixture(scope="module")
def report():
    return run_detection_evasion(horizon=20.0)


class TestEvasionReport:
    def test_four_conditions(self, report):
        assert set(report.scenarios) == {"baseline", "pdos-k1", "pdos-k8",
                                         "flooding"}

    def test_gamma_stars_ordered(self, report):
        """Risk aversion lowers the optimal rate."""
        assert report.gamma_star_averse < report.gamma_star

    def test_loads_ordered(self, report):
        s = report.scenarios
        assert s["flooding"].mean_rate_fraction > 1.5
        assert (s["pdos-k8"].mean_rate_fraction
                < s["pdos-k1"].mean_rate_fraction
                <= 1.05)

    def test_volume_detector_flags_only_flood(self, report):
        s = report.scenarios
        assert s["flooding"].flood_verdict.detected
        assert not s["baseline"].flood_verdict.detected
        assert not s["pdos-k1"].flood_verdict.detected
        assert not s["pdos-k8"].flood_verdict.detected

    def test_render(self, report):
        text = report.render()
        assert "volume" in text
        assert "conformance" in text
