"""Defense experiments: randomized RTO and CHOKe hardening."""

import pytest

from repro.experiments.defenses import (
    RTODefenseResult,
    run_aqm_hardening,
    run_rto_randomization,
)


class TestRTORandomization:
    @pytest.fixture(scope="class")
    def result(self):
        # Short window keeps the test fast; the effect is large.
        return run_rto_randomization(window=15.0)

    def test_defends_timeout_based_attack(self, result):
        """The reference-[7] defense works against the shrew attack."""
        assert result.shrew_recovery() > 0.25

    def test_weak_against_aimd_based_attack(self, result):
        """... but, per Section 1.1, not against the AIMD-based attack."""
        assert result.aimd_recovery() < result.shrew_recovery() / 2

    def test_render_mentions_both_attacks(self, result):
        text = result.render()
        assert "timeout-based" in text
        assert "AIMD-based" in text


class TestAQMHardening:
    def test_choke_reduces_attacker_gain(self):
        result = run_aqm_hardening(gammas=[0.5, 0.7])
        assert result.mean_gain_reduction() > 0.0
        assert "CHOKe" in result.render()

    def test_damage_lower_under_choke_at_high_rate(self):
        result = run_aqm_hardening(gammas=[0.7])
        red_damage = result.red.points[0].measured_degradation
        choke_damage = result.choke.points[0].measured_degradation
        assert choke_damage < red_damage
