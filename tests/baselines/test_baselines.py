"""Baseline attacks: flooding, shrew, RoQ."""

import pytest

from repro.baselines.flooding import FloodingAttack
from repro.baselines.roq import RoQAttack, roq_potency
from repro.baselines.shrew import ShrewAttack
from repro.util.errors import ValidationError
from repro.util.units import mbps, ms


class TestFlooding:
    def test_train_is_flooding(self):
        attack = FloodingAttack(rate_bps=mbps(30), duration=10.0)
        train = attack.train()
        assert train.is_flooding
        assert train.total_duration() == 10.0

    def test_gamma_at_least_one_when_saturating(self):
        attack = FloodingAttack(rate_bps=mbps(30), duration=10.0)
        assert attack.gamma(mbps(15)) == pytest.approx(2.0)

    def test_total_bytes(self):
        attack = FloodingAttack(rate_bps=mbps(8), duration=10.0)
        assert attack.total_bytes() == pytest.approx(10e6)

    def test_never_evades_when_saturating(self):
        attack = FloodingAttack(rate_bps=mbps(30), duration=10.0)
        assert not attack.evades_volume_detection(mbps(15))

    def test_validation(self):
        with pytest.raises(ValidationError):
            FloodingAttack(rate_bps=0.0, duration=1.0)


class TestShrew:
    def test_period_is_min_rto_over_harmonic(self):
        attack = ShrewAttack(min_rto=1.0, rate_bps=mbps(30), extent=ms(100),
                             harmonic=2)
        assert attack.period == pytest.approx(0.5)

    def test_train_matches_period(self):
        attack = ShrewAttack(min_rto=1.0, rate_bps=mbps(30), extent=ms(100))
        train = attack.train(10)
        assert train.period == pytest.approx(1.0)
        assert train.n_pulses == 10

    def test_gamma(self):
        attack = ShrewAttack(min_rto=1.0, rate_bps=mbps(30), extent=ms(100))
        assert attack.gamma(mbps(15)) == pytest.approx(0.2)

    def test_extent_must_fit_period(self):
        with pytest.raises(ValidationError):
            ShrewAttack(min_rto=0.2, rate_bps=mbps(30), extent=0.3)

    def test_harmonic_validated(self):
        with pytest.raises(ValidationError):
            ShrewAttack(min_rto=1.0, rate_bps=mbps(30), extent=ms(100),
                        harmonic=0)

    def test_shrew_periods_are_shrew_points(self):
        from repro.core.shrew import is_shrew_point

        for harmonic in (1, 2, 3):
            attack = ShrewAttack(min_rto=1.0, rate_bps=mbps(30),
                                 extent=ms(50), harmonic=harmonic)
            assert is_shrew_point(attack.period, 1.0)


class TestRoQ:
    def test_tuned_for_red_time_constant(self):
        attack = RoQAttack.tuned_for_red(rate_bps=mbps(30),
                                         bottleneck_bps=mbps(15),
                                         w_q=0.002, mean_pkt_bytes=1500.0)
        packet_time = 1500 * 8 / 15e6
        time_constant = packet_time / 0.002
        assert attack.extent == pytest.approx(0.5 * time_constant)
        assert attack.period == pytest.approx(3.0 * time_constant)

    def test_train_construction(self):
        attack = RoQAttack(rate_bps=mbps(30), extent=0.2, period=1.2)
        train = attack.train(5)
        assert train.n_pulses == 5
        assert train.space == pytest.approx(1.0)

    def test_gamma(self):
        attack = RoQAttack(rate_bps=mbps(30), extent=0.2, period=1.2)
        assert attack.gamma(mbps(15)) == pytest.approx(2 * 0.2 / 1.2)

    def test_cost_bytes(self):
        attack = RoQAttack(rate_bps=mbps(8), extent=0.5, period=2.0)
        assert attack.cost_bytes(4) == pytest.approx(4 * 8e6 * 0.5 / 8)

    def test_extent_must_fit_period(self):
        with pytest.raises(ValidationError):
            RoQAttack(rate_bps=mbps(30), extent=2.0, period=1.0)


class TestPotency:
    def test_formula(self):
        assert roq_potency(1000.0, 100.0, omega=1.0) == 10.0
        assert roq_potency(1000.0, 100.0, omega=2.0) == 0.1

    def test_higher_omega_penalizes_cost(self):
        assert roq_potency(1e6, 1e4, 2.0) < roq_potency(1e6, 1e4, 1.0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            roq_potency(-1.0, 100.0)
        with pytest.raises(ValidationError):
            roq_potency(1.0, 0.0)
