#!/usr/bin/env python3
"""Defender's view: which attacks do standard detectors actually catch?

Runs the detection-evasion experiment: the same dumbbell is subjected to
(a) no attack, (b) the risk-neutral optimal PDoS attack, (c) a
risk-averse optimal PDoS attack, and (d) an equal-pulse-rate flood, and
four detector configurations inspect the bottleneck traffic:

* a volume (flood) detector with a 5 s window;
* a DTW pulse detector sampled faster than T_extent;
* the same DTW detector sampled slower than T_extent (the blind spot
  the paper identifies in reference [8]);
* a flow-conformance filter with an average-rate floor.

The punchline is the paper's Section-1 claim made quantitative: the
optimized pulsing attack inflicts most of the flood's damage while
tripping none of the flood-oriented alarms -- and the attacker's risk
exponent κ is precisely the knob that trades residual detectability
for damage.

Run:  python examples/defense_evaluation.py
"""

from repro.baselines import FloodingAttack, RoQAttack, ShrewAttack
from repro.experiments import run_detection_evasion
from repro.util.units import mbps, ms


def main() -> None:
    report = run_detection_evasion()
    print(report.render())

    print("\nbaseline attack repertoire (for comparison):")
    flood = FloodingAttack(rate_bps=mbps(30), duration=30.0)
    print(f"  flooding: gamma = {flood.gamma(mbps(15)):.2f}, "
          f"volume = {flood.total_bytes() / 1e6:.0f} MB "
          f"(evades volume detection: "
          f"{flood.evades_volume_detection(mbps(15))})")
    shrew = ShrewAttack(min_rto=1.0, rate_bps=mbps(30), extent=ms(100))
    print(f"  shrew (minRTO=1s): period = {shrew.period:.2f} s, "
          f"gamma = {shrew.gamma(mbps(15)):.2f}")
    roq = RoQAttack.tuned_for_red(rate_bps=mbps(30), bottleneck_bps=mbps(15))
    print(f"  RoQ (RED transients): extent = {roq.extent * 1e3:.0f} ms, "
          f"period = {roq.period * 1e3:.0f} ms, "
          f"gamma = {roq.gamma(mbps(15)):.2f}")


if __name__ == "__main__":
    main()
