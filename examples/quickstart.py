#!/usr/bin/env python3
"""Quickstart: plan an optimal PDoS attack and validate it in simulation.

This walks the paper's whole pipeline in one page:

1. describe the victim population (15 TCP flows behind a 15 Mb/s
   bottleneck, RTTs from 20 to 460 ms);
2. solve the Section-3 optimization for a risk-neutral attacker --
   closed-form γ*, the optimal pulse spacing, and the predicted gain;
3. launch exactly that pulse train in the packet-level simulator;
4. compare the predicted throughput degradation with the measured one.

Run:  python examples/quickstart.py
"""

from repro.core import VictimPopulation, optimal_attack
from repro.sim import DumbbellConfig, TCPConfig, TCPVariant, build_dumbbell
from repro.util.units import mbps, ms


def main() -> None:
    bottleneck = mbps(15)
    tcp = TCPConfig(variant=TCPVariant.NEWRENO, delayed_ack=2, min_rto=1.0)
    config = DumbbellConfig(n_flows=15, tcp=tcp, seed=2)

    # -- step 1+2: the analytical plan -------------------------------
    victims = VictimPopulation(rtts=config.flow_rtts(), delayed_ack=2)
    plan = optimal_attack(
        victims,
        rate_bps=mbps(30),      # pulse rate: 2x the bottleneck
        extent=ms(100),         # pulse width
        bottleneck_bps=bottleneck,
        kappa=1.0,              # risk-neutral attacker
        n_pulses=400,
    )
    print("=== optimal attack plan (risk-neutral) ===")
    print(f"C_psi            = {plan.c_psi:.3f}")
    print(f"gamma*           = {plan.gamma_star:.3f}   (Corollary 3: sqrt(C_psi))")
    print(f"T_AIMD*          = {plan.period_star * 1e3:.0f} ms "
          f"(T_space = {plan.train.space * 1e3:.0f} ms)")
    print(f"predicted Gamma  = {plan.degradation_star:.3f}")
    print(f"predicted gain G = {plan.gain_star:.3f}")

    # -- step 3: launch it on the dumbbell ---------------------------
    warmup, window = 8.0, 30.0

    def measure(attack_train):
        net = build_dumbbell(DumbbellConfig(n_flows=15, tcp=tcp, seed=2))
        net.start_flows()
        net.run(until=warmup)
        before = net.aggregate_goodput_bytes()
        if attack_train is not None:
            net.add_attack(attack_train, start_time=warmup).start()
        net.run(until=warmup + window)
        return net.aggregate_goodput_bytes() - before

    baseline = measure(None)
    attacked = measure(plan.train)

    # -- step 4: compare ---------------------------------------------
    measured_degradation = 1.0 - attacked / baseline
    print("\n=== simulation check ===")
    print(f"baseline goodput   = {baseline * 8 / window / 1e6:.2f} Mb/s")
    print(f"attacked goodput   = {attacked * 8 / window / 1e6:.2f} Mb/s")
    print(f"measured Gamma     = {measured_degradation:.3f} "
          f"(model predicted {plan.degradation_star:.3f})")
    if measured_degradation > plan.degradation_star + 0.1:
        print("  -> an over-gain outcome (Section 4.1.1): the pulses force "
              "timeouts, not just\n     fast recovery, so the FR-only model "
              "under-estimates the damage.")
    mean_rate = plan.train.mean_rate_bps() / 1e6
    print(f"attacker average rate = {mean_rate:.2f} Mb/s "
          f"({plan.gamma_star:.0%} of the bottleneck -- low enough to evade "
          f"flood detection)")


if __name__ == "__main__":
    main()
