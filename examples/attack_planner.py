#!/usr/bin/env python3
"""The damage/stealth trade-off: optimal attacks across risk preferences.

Sweeps the risk exponent κ from strongly risk-loving to strongly
risk-averse and prints the optimal tuning for each -- γ*, the pulse
spacing, the predicted damage, and the average attack rate the defender
would have to notice.  The two Corollary limits bracket the table:
κ → 0 recovers the flooding attacker (γ* → 1) and κ → ∞ the maximally
cautious one (γ* → C_ψ).

Run:  python examples/attack_planner.py
"""

import numpy as np

from repro.core import (
    VictimPopulation,
    classify_kappa,
    optimal_attack,
    optimal_gamma,
)
from repro.util.units import mbps, ms


def main() -> None:
    bottleneck = mbps(15)
    victims = VictimPopulation(
        rtts=np.linspace(0.02, 0.46, 15), delayed_ack=2,
    )
    rate, extent = mbps(30), ms(100)

    print("victims: 15 TCP flows, RTT 20-460 ms, 15 Mb/s bottleneck")
    print(f"pulse: R_attack = {rate / 1e6:.0f} Mb/s, "
          f"T_extent = {extent * 1e3:.0f} ms\n")
    header = (
        f"{'kappa':>7} {'type':<13} {'gamma*':>7} {'T_AIMD*':>9} "
        f"{'T_space*':>9} {'Gamma*':>7} {'G*':>7} {'avg rate':>9}"
    )
    print(header)
    print("-" * len(header))
    for kappa in (0.1, 0.3, 1.0, 3.0, 8.0, 30.0):
        plan = optimal_attack(
            victims, rate_bps=rate, extent=extent,
            bottleneck_bps=bottleneck, kappa=kappa,
        )
        print(
            f"{kappa:7.1f} {classify_kappa(kappa).value:<13} "
            f"{plan.gamma_star:7.3f} {plan.period_star * 1e3:7.0f}ms "
            f"{plan.train.space * 1e3:7.0f}ms {plan.degradation_star:7.3f} "
            f"{plan.gain_star:7.3f} {plan.train.mean_rate_bps() / 1e6:7.2f}Mb"
        )

    c_psi = plan.c_psi
    print("\nCorollary limits:")
    print(f"  kappa -> 0   : gamma* -> 1      "
          f"(flooding; computed {optimal_gamma(c_psi, 1e-9):.6f})")
    print(f"  kappa -> inf : gamma* -> C_psi = {c_psi:.3f} "
          f"(computed {optimal_gamma(c_psi, 1e9):.6f})")
    print(f"  kappa  = 1   : gamma* = sqrt(C_psi) = {c_psi ** 0.5:.3f}")


if __name__ == "__main__":
    main()
