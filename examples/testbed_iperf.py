#!/usr/bin/env python3
"""Watch an attack land: Iperf-style interval reports on the test-bed.

Builds the paper's Fig.-11 Dummynet test-bed (10 Iperf flows through a
10 Mb/s, 150 ms RED pipe), attaches an Iperf-like reporter to one flow,
lets the flows reach steady state, then fires the Fig.-12 attack
(R_attack = 20 Mb/s, T_extent = 150 ms) at t = 15 s.  The interval lines
show the flow's bandwidth collapsing when the pulses start.

Run:  python examples/testbed_iperf.py
"""

from repro.core import PulseTrain
from repro.testbed import IperfClient, TestbedConfig, build_testbed
from repro.util.units import mbps, ms

ATTACK_START = 15.0
END = 40.0


def main() -> None:
    net = build_testbed(TestbedConfig(n_flows=10, seed=42))
    client = IperfClient(net.senders[0], interval=1.0)

    train = PulseTrain.from_gamma(
        gamma=0.5, rate_bps=mbps(20), extent=ms(150),
        bottleneck_bps=net.config.pipe.bandwidth_bps, n_pulses=200,
    )
    print(f"test-bed: {net.config.n_flows} Iperf flows, "
          f"{net.config.pipe.bandwidth_bps / 1e6:.0f} Mb/s pipe, "
          f"RTT {net.config.rtt() * 1e3:.0f} ms")
    print(f"attack at t={ATTACK_START:.0f}s: {train} "
          f"(gamma = {train.gamma(net.config.pipe.bandwidth_bps):.2f})\n")

    client.start()
    for sender in net.senders[1:]:
        sender.start()
    net.add_attack(train, start_time=ATTACK_START).start()
    net.run(until=END)

    print("flow 0 interval reports (iperf -i 1):")
    for report in client.reports:
        marker = "  <-- attack on" if report.start >= ATTACK_START else ""
        print(report.format_line() + marker)
    print("\nsummary:", client.summary().format_line())

    before = [r.bandwidth_bps for r in client.reports
              if 5.0 <= r.start < ATTACK_START]
    after = [r.bandwidth_bps for r in client.reports
             if r.start >= ATTACK_START + 2.0]
    if before and after:
        mean_before = sum(before) / len(before)
        mean_after = sum(after) / len(after)
        print(f"\nflow 0 bandwidth: {mean_before / 1e6:.2f} Mb/s before, "
              f"{mean_after / 1e6:.2f} Mb/s under attack "
              f"({1 - mean_after / mean_before:.0%} degradation)")


if __name__ == "__main__":
    main()
