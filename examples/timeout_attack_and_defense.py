#!/usr/bin/env python3
"""The other attack class, and what a defender can do about it.

The paper analyses the AIMD-based PDoS attack; its companion (NDSS '05)
covers the timeout-based class -- the shrew mechanism.  This example:

1. plans a timeout-based attack from first principles (period on a
   minRTO harmonic, pulse width covering the victims' RTTs, rate sized
   to fill the bottleneck buffer);
2. launches it on the dumbbell and measures the damage;
3. deploys the two defenses this library implements -- randomized RTO
   (reference [7]) and a CHOKe bottleneck -- and measures how much
   goodput each recovers;
4. shows the paper's point: the randomization defense that neutralizes
   *this* attack is ineffective against the AIMD-based attack from
   `quickstart.py`.

Run:  python examples/timeout_attack_and_defense.py
"""

from repro.core import plan_timeout_attack
from repro.sim import DumbbellConfig, TCPConfig, TCPVariant, build_dumbbell
from repro.sim.topology import make_choke_queue, make_red_queue
from repro.util.units import mbps

WARMUP, WINDOW = 6.0, 25.0


def measure(train, *, rto_jitter=0.0, queue_factory=make_red_queue,
            n_flows=15, seed=5):
    """Goodput (bits/s) of the victims during the attack window."""
    tcp = TCPConfig(variant=TCPVariant.NEWRENO, delayed_ack=2, min_rto=1.0,
                    rto_jitter=rto_jitter)
    net = build_dumbbell(DumbbellConfig(
        n_flows=n_flows, tcp=tcp, seed=seed, queue_factory=queue_factory,
    ))
    net.start_flows()
    net.run(until=WARMUP)
    before = net.aggregate_goodput_bytes()
    if train is not None:
        net.add_attack(train, start_time=WARMUP).start()
    net.run(until=WARMUP + WINDOW)
    return (net.aggregate_goodput_bytes() - before) * 8 / WINDOW


def main() -> None:
    config = DumbbellConfig(n_flows=15)
    plan = plan_timeout_attack(
        min_rto=1.0,                      # the victims' ns-2-style minRTO
        bottleneck_bps=config.bottleneck_rate_bps,
        buffer_bytes=config.buffer_bytes,
        rtt_max=float(config.flow_rtts()[-1]),
    )
    print(plan.render())
    train = plan.train(n_pulses=int(WINDOW / plan.period) + 2)

    baseline = measure(None)
    attacked = measure(train)
    print(f"\nbaseline goodput          = {baseline / 1e6:6.2f} Mb/s")
    print(f"under timeout-based attack= {attacked / 1e6:6.2f} Mb/s "
          f"(Gamma = {1 - attacked / baseline:.2f})")

    with_jitter = measure(train, rto_jitter=0.5)
    with_choke = measure(train, queue_factory=make_choke_queue)
    print("\ndefenses against the timeout-based attack:")
    print(f"  randomized RTO (+-50%):  {with_jitter / 1e6:6.2f} Mb/s "
          f"({(with_jitter / attacked - 1):+.0%} vs undefended)")
    print(f"  CHOKe bottleneck:        {with_choke / 1e6:6.2f} Mb/s "
          f"({(with_choke / attacked - 1):+.0%} vs undefended)")

    # The AIMD-based attack shrugs off the randomization defense.
    from repro.core import PulseTrain

    aimd = PulseTrain.from_gamma(
        gamma=0.6, rate_bps=mbps(30), extent=0.1,
        bottleneck_bps=config.bottleneck_rate_bps,
        n_pulses=int(WINDOW / 0.33) + 2,
    )
    aimd_plain = measure(aimd)
    aimd_jittered = measure(aimd, rto_jitter=0.5)
    print("\nthe same defense against the AIMD-based attack:")
    print(f"  undefended:              {aimd_plain / 1e6:6.2f} Mb/s")
    print(f"  randomized RTO (+-50%):  {aimd_jittered / 1e6:6.2f} Mb/s "
          f"({(aimd_jittered / aimd_plain - 1):+.0%} -- the paper's "
          f"Section-1.1 point)")


if __name__ == "__main__":
    main()
