#!/usr/bin/env python3
"""Offline trace analysis: ns-2-format traces from the simulator.

The simulator writes the classic ns-2 whitespace trace format, so runs
can be archived and analysed offline with existing tooling -- or with
this library's own analysis stack, as demonstrated here:

1. run an attacked dumbbell with the bottleneck traced to a file;
2. reload the trace and rebuild the incoming-traffic series *from the
   trace alone*;
3. recover the attack period and locate the loss bursts offline.

Run:  python examples/trace_analysis.py
"""

import tempfile

import numpy as np

from repro.analysis import analyze_synchronization, sparkline
from repro.core import PulseTrain
from repro.sim import DumbbellConfig, PacketKind, TraceWriter, build_dumbbell, read_trace
from repro.util.units import mbps, ms

HORIZON = 30.0
BIN = 0.1


def main() -> None:
    # -- 1. run and trace ---------------------------------------------
    trace_path = tempfile.mktemp(suffix=".tr", prefix="pdos_")
    writer = TraceWriter.to_path(trace_path)
    net = build_dumbbell(DumbbellConfig(n_flows=15, seed=8))
    writer.attach(net.bottleneck)

    train = PulseTrain.uniform(ms(100), mbps(30), ms(400), n_pulses=60)
    net.start_flows()
    net.add_attack(train, start_time=3.0).start()
    net.run(until=HORIZON)
    writer.close()
    print(f"wrote {writer.lines_written} trace lines to {trace_path}")

    # -- 2. reload and rebuild the traffic series ----------------------
    records = read_trace(trace_path)
    n_bins = int(HORIZON / BIN)
    series = np.zeros(n_bins)
    drops_per_bin = np.zeros(n_bins)
    for record in records:
        index = int(record.time / BIN)
        if index >= n_bins:
            continue
        series[index] += record.size_bytes
        if record.dropped:
            drops_per_bin[index] += 1

    attack_bytes = sum(r.size_bytes for r in records
                       if r.kind is PacketKind.ATTACK)
    legit_bytes = sum(r.size_bytes for r in records
                      if r.kind is PacketKind.DATA)
    print(f"offered at bottleneck: {legit_bytes / 1e6:.1f} MB legitimate, "
          f"{attack_bytes / 1e6:.1f} MB attack")

    # -- 3. analysis from the trace alone ------------------------------
    print("\noffered load (from trace):")
    print(sparkline(series))
    print("drops per bin:")
    print(sparkline(drops_per_bin))

    report = analyze_synchronization(series[int(3.0 / BIN):], BIN)
    print(f"\nrecovered period: pinnacles -> "
          f"{report.pinnacle_period and round(report.pinnacle_period, 2)} s, "
          f"ACF -> {report.acf_period and round(report.acf_period, 2)} s "
          f"(ground truth T_AIMD = {train.period:.2f} s)")

    drop_report = analyze_synchronization(drops_per_bin[int(3.0 / BIN):],
                                          BIN)
    print(f"loss process: {int(drops_per_bin.sum())} drops across "
          f"{int((drops_per_bin > 0).sum())} bins; drop-series ACF period "
          f"{drop_report.acf_period and round(drop_report.acf_period, 2)} s "
          f"(the attack period again)")


if __name__ == "__main__":
    main()
