#!/usr/bin/env python3
"""Quasi-global synchronization: see the attack's fingerprint in traffic.

Reproduces the Fig.-3 measurement end to end and renders it as an ASCII
sparkline: a PDoS attack with T_AIMD = 2 s is launched against 24 TCP
flows, the bottleneck's offered load is binned, normalized, and PAA-
reduced, and the attack period is recovered three independent ways
(pinnacle counting, autocorrelation, FFT).  A DTW pulse detector is then
run at two sampling periods to show the paper's point about reference
[8]: sampled slower than T_extent, the pulses become invisible.

Run:  python examples/sync_detection.py
"""

import numpy as np

from repro.analysis import analyze_synchronization, normalize, paa_series, sparkline
from repro.core import PulseTrain
from repro.detection import DTWPulseDetector
from repro.sim import DumbbellConfig, RateMonitor, build_dumbbell
from repro.util.units import mbps, ms

BIN = 0.02      # raw trace bin, seconds
PAA_WIDTH = 5   # 5 bins -> 0.1 s display segments
HORIZON = 30.0


def main() -> None:
    train = PulseTrain.uniform(ms(50), mbps(100), ms(1950), n_pulses=20)
    print(f"attack: {train}  (period {train.period:.1f} s, "
          f"duty cycle {train.duty_cycle:.1%})")

    net = build_dumbbell(DumbbellConfig(n_flows=24, seed=11))
    monitor = RateMonitor(BIN, HORIZON)
    net.start_flows()
    net.run(until=5.0)
    offset = net.sim.now
    net.bottleneck.monitors.append(
        lambda pkt, now, ok: monitor.observe(pkt, now - offset, ok)
    )
    net.add_attack(train, start_time=5.0).start()
    net.run(until=5.0 + HORIZON)

    display = paa_series(normalize(monitor.bytes_per_bin), PAA_WIDTH)
    print("\nincoming traffic (normalized, PAA):")
    print(sparkline(display))

    report = analyze_synchronization(display, BIN * PAA_WIDTH)
    print(f"\npinnacles: {report.pinnacles} in {report.window:.0f} s "
          f"=> period {report.pinnacle_period:.2f} s")
    print(f"autocorrelation period: {report.acf_period:.2f} s")
    print(f"FFT period:             {report.fft_period:.2f} s")
    print(f"attack period:          {train.period:.2f} s  "
          f"(consistent: {report.consistent_with(train.period)})")

    print("\nDTW pulse detector (Sun/Lui/Yau style):")
    print(f"  (T_extent = {train.extent * 1e3:.0f} ms; once the sampling "
          f"period grows well past it,\n   the pulse energy averages away "
          f"-- the blind spot the paper identifies)")
    for sample_period in (0.1, 1.0):
        verdict = DTWPulseDetector(sample_period=sample_period).detect(
            monitor.bytes_per_bin, BIN
        )
        print(f"  sampling {sample_period:.1f} s: detected="
              f"{verdict.detected} (distance {verdict.best_distance:.3f})")


if __name__ == "__main__":
    main()
