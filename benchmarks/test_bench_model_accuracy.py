"""Bench (accuracy): how well the models track the packet engine.

Two gates live here:

* **Analytical ablation** -- the FR-only model vs the timeout-aware
  extension (the paper's Section-5 future work).  The extension must
  beat the base model overall, because it captures the over-gain and
  shrew effects the paper attributes to timeouts.
* **Fluid backend** -- the ODE backend swept over the Fig.-6 panel
  (R_attack = 25 Mb/s, 15 flows, T_extent ∈ {50, 75, 100} ms) against
  the packet engine.  The fluid model is the planner pre-pass's γ*
  localizer, so the gates encode exactly that contract: the fluid γ*
  must land within one coarse-grid step of the packet γ* on every
  extent, and the per-cell relative goodput error must stay under
  :data:`FLUID_REL_ERROR_BOUND`.  The bound is loose by design -- the
  fluid model trades per-cell fidelity for a ~1000x speedup, and only
  the *shape* of the γ landscape has to survive that trade.
"""

import dataclasses
import math
import time

from benchmarks.conftest import run_once
from repro.experiments.ablation_model import run_model_ablation
from repro.experiments.base import DumbbellPlatform
from repro.core.attack import PulseTrain
from repro.runner import Cell, ExperimentRunner, PlatformSpec
from repro.runner.cells import goodput_rate
from repro.util.units import mbps, ms

RATE = mbps(25)
EXTENTS = (ms(50), ms(75), ms(100))
GAMMAS = (0.1, 0.3, 0.5, 0.7, 0.9)
N_FLOWS = 15
SEED = 42
WARMUP = 6.0
WINDOW = 20.0

#: One coarse-grid step -- the γ* agreement bar (matches the planner
#: bench and the fig06 γ grid spacing).
GAMMA_STAR_TOL = 0.2

#: Documented per-cell relative goodput error bound for the fluid
#: backend on this panel (measured worst case: 0.37 at γ=0.1, where the
#: fluid model understates damage from sub-RTO pulses).
FLUID_REL_ERROR_BOUND = 0.40


def test_timeout_model_beats_base_model(benchmark, record_result):
    ablation = run_once(benchmark, run_model_ablation)
    record_result("ablation_model_accuracy", ablation.render())
    assert ablation.mean_extended_error() < ablation.mean_base_error()


def _train(gamma, extent, bottleneck):
    period = PulseTrain.period_from_gamma(
        gamma=gamma, rate_bps=RATE, extent=extent,
        bottleneck_bps=bottleneck,
    )
    return PulseTrain.from_gamma(
        gamma=gamma, rate_bps=RATE, extent=extent,
        bottleneck_bps=bottleneck,
        n_pulses=int(math.ceil(WINDOW / period)) + 2,
    )


def _panel(backend, bottleneck):
    """Sweep the Fig.-6 panel on one backend: (extent, γ) -> rate."""
    runner = ExperimentRunner(jobs=1, cache_dir=None)
    spec = PlatformSpec(kind="dumbbell", n_flows=N_FLOWS, seed=SEED)
    base = Cell(platform=spec, warmup=WARMUP, window=WINDOW,
                backend=backend)
    cells, refs = [base], [None]
    for extent in EXTENTS:
        for gamma in GAMMAS:
            cells.append(dataclasses.replace(
                base, train=_train(gamma, extent, bottleneck)))
            refs.append((extent, gamma))
    started = time.perf_counter()
    results = runner.measure_many(cells)
    wall = time.perf_counter() - started
    rates = {ref: goodput_rate(cell, result)
             for ref, cell, result in zip(refs, cells, results)}
    return rates, wall


def test_fluid_backend_tracks_the_packet_engine(benchmark, record_result):
    bottleneck = DumbbellPlatform(n_flows=N_FLOWS).bottleneck_bps
    packet, packet_wall = _panel("packet", bottleneck)
    (fluid, fluid_wall) = run_once(benchmark, _panel, "fluid", bottleneck)

    cells = 1 + len(EXTENTS) * len(GAMMAS)
    rows = [
        "Fluid-vs-packet accuracy -- Fig. 6 panel "
        f"(R_attack={RATE / 1e6:.0f}M, {N_FLOWS} flows, "
        f"{WARMUP:.0f}s warm-up / {WINDOW:.0f}s window, "
        f"{cells} cells per backend)",
        f"packet: {packet_wall:.2f}s   fluid: {fluid_wall:.2f}s "
        f"({packet_wall / max(fluid_wall, 1e-9):.0f}x faster)",
        "",
        f"{'extent':<8} {'gamma':>6} {'pkt deg':>8} {'fld deg':>8} "
        f"{'rel err':>8}",
    ]
    worst = 0.0
    stars = []
    for extent in EXTENTS:
        gains = {}
        for gamma in GAMMAS:
            pkt = 1.0 - packet[(extent, gamma)] / packet[None]
            fld = 1.0 - fluid[(extent, gamma)] / fluid[None]
            err = (abs(fluid[(extent, gamma)] - packet[(extent, gamma)])
                   / packet[(extent, gamma)])
            worst = max(worst, err)
            gains[gamma] = (pkt * (1.0 - gamma), fld * (1.0 - gamma))
            rows.append(
                f"{extent * 1e3:>5.0f}ms  {gamma:>6.2f} {pkt:>8.3f} "
                f"{fld:>8.3f} {err:>8.3f}"
            )
        packet_star = max(GAMMAS, key=lambda g: gains[g][0])
        fluid_star = max(GAMMAS, key=lambda g: gains[g][1])
        stars.append((extent, packet_star, fluid_star))
        rows.append("")
    rows.extend(
        f"gamma* [T_extent={extent * 1e3:.0f}ms]: "
        f"packet={packet_star:.2f} fluid={fluid_star:.2f}"
        for extent, packet_star, fluid_star in stars
    )
    rows.append(f"max relative goodput error: {worst:.3f} "
                f"(bound {FLUID_REL_ERROR_BOUND:.2f})")
    record_result("model_accuracy", "\n".join(rows))

    # Baseline (unattacked) agreement is much tighter than the attacked
    # bound: both backends saturate the bottleneck.
    assert abs(fluid[None] - packet[None]) / packet[None] < 0.05
    for extent, packet_star, fluid_star in stars:
        assert abs(fluid_star - packet_star) <= GAMMA_STAR_TOL + 1e-9, (
            f"extent {extent * 1e3:.0f}ms: fluid gamma*={fluid_star} is "
            f"more than one grid step from packet gamma*={packet_star}"
        )
    assert worst < FLUID_REL_ERROR_BOUND
