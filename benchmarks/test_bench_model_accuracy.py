"""Bench (ablation): FR-only model vs the timeout-aware extension.

The paper's Section-5 future work, evaluated: both analytical models
predict the gain curve for the same sweep, and their absolute errors
against the simulation are compared.  The timeout-aware extension must
beat the base model overall, because it captures the over-gain and
shrew effects the paper attributes to timeouts.
"""

from benchmarks.conftest import run_once
from repro.experiments.ablation_model import run_model_ablation


def test_timeout_model_beats_base_model(benchmark, record_result):
    ablation = run_once(benchmark, run_model_ablation)
    record_result("ablation_model_accuracy", ablation.render())
    assert ablation.mean_extended_error() < ablation.mean_base_error()
