"""Bench (extension): mice vs elephants.

Adds a short-flow (mice) churn to the elephant-only victim population
and measures both: aggregate goodput degradation for the elephants,
flow-completion-time inflation for the mice.  The mice's tail FCT must
inflate under attack (the interactive-traffic damage a throughput
number hides).
"""

from benchmarks.conftest import run_once
from repro.experiments.mice_elephants import run_mice_elephants


def test_mice_vs_elephants(benchmark, record_result):
    result = run_once(benchmark, run_mice_elephants)
    record_result("mice_elephants", result.render())
    assert result.elephant_degradation() > 0.3
    assert result.mice_p90_inflation() > 1.2
