"""Bench (ablation): RED vs drop-tail at the bottleneck.

Quantifies the conclusion's forward-looking claim: "a PDoS attacker can
achieve a higher attack gain by attacking a RED router than attacking a
drop-tail router".
"""

from benchmarks.conftest import run_once
from repro.experiments.ablation_red_droptail import run_queue_ablation


def test_red_vs_droptail_ablation(benchmark, record_result):
    ablation = run_once(benchmark, run_queue_ablation)
    record_result("ablation_red_droptail", ablation.render())
    # The paper's claim: RED grants the attacker the higher gain.
    assert ablation.mean_gain_advantage() > 0.0
