"""Bench: Fig. 2 -- the periodic incoming-traffic pattern (model).

Regenerates the idealized incoming-traffic series and verifies that the
period extracted from it equals T_AIMD, exactly as the figure's caption
asserts.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig02_pattern import run_fig02


def test_fig02_periodic_pattern(benchmark, record_result):
    result = run_once(benchmark, run_fig02)
    record_result("fig02_pattern", result.render())
    assert result.report.consistent_with(result.attack_period)
