"""Bench: Fig. 10 -- the PDoS / shrew-attack relationship.

Sweeps the paper's three settings with the minRTO harmonics injected
into the γ grid, and checks the figure's claim: at shrew points the
measured gain greatly exceeds the analytical (FR-only) prediction.
"""

import math

from benchmarks.conftest import run_once
from repro.experiments.fig10_shrew import run_fig10


def test_fig10_shrew_points(benchmark, record_result):
    fig = run_once(benchmark, run_fig10)
    record_result("fig10_shrew", fig.render())

    for curve, shrew_excess in zip(fig.curves, fig.shrew_excess):
        # Every curve contains flagged shrew points ...
        assert any(p.is_shrew for p in curve.points), curve.label
        # ... and at those points the measurement beats the analysis
        # (the paper: "much higher than what are anticipated").
        assert not math.isnan(shrew_excess)
        assert shrew_excess > 0.1, (curve.label, shrew_excess)
