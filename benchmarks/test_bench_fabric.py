"""Bench: the work-stealing fabric vs the static-chunked process pool.

The fabric exists for one reason: a statically chunked batch is as slow
as its unluckiest worker.  This bench builds a deliberately skewed
workload -- a few long tasks hiding at the front of the list, where
static chunking packs them onto the same workers -- and dispatches it
both ways at 8 workers:

* **static**: ``ProcessPoolExecutor.map`` with the classic
  ``ceil(n/workers)`` chunksize, the pre-fabric dispatch shape;
* **fabric**: every task a leasable group in the sqlite queue, workers
  pulling whenever idle.

Tasks are timed sleeps through the queue's callable-payload seam, so
the measured gap is pure *scheduling* -- it holds on any core count
(sleeps overlap even on a single-core box) and is not diluted by
simulation time.  The gate asserts the fabric wins by >= 1.3x.

Also hard-asserts the fabric's two correctness contracts on real
cells: bit-identical results across serial / pool / fabric placement,
and lease-expiry re-queue (a dead worker's group is stolen and
completed).
"""

import concurrent.futures
import functools
import hashlib
import itertools
import math
import pickle
import time

from benchmarks.conftest import best_of_reps, format_reps, run_once
from repro.core.attack import PulseTrain
from repro.runner import (
    Cell,
    ExperimentRunner,
    FabricBroker,
    LeaseQueue,
    PlatformSpec,
    worker_main,
)
from repro.util.units import mbps, ms

WORKERS = 8
#: Skewed workload: four 0.6 s stragglers packed at the front (static
#: chunking pairs them onto two workers), then a tail of quick tasks.
DURATIONS = (0.6,) * 4 + (0.05,) * 12
CHUNKSIZE = math.ceil(len(DURATIONS) / WORKERS)


def _sleep_task(seconds):
    time.sleep(seconds)
    return seconds


def _static_pool_wall(pool):
    started = time.perf_counter()
    done = list(pool.map(_sleep_task, DURATIONS, chunksize=CHUNKSIZE))
    wall = time.perf_counter() - started
    assert done == list(DURATIONS)
    return wall


def _fabric_wall(broker, round_tag):
    # Fresh keys per rep: reuse of durable results is a *feature* the
    # invariance tests cover; here it would skip the work being timed.
    units = [
        (f"{round_tag}-g{i}",
         [(f"{round_tag}-k{i}", functools.partial(_sleep_task, seconds))])
        for i, seconds in enumerate(DURATIONS)
    ]
    landed = []
    stats = broker.run_batch(units, lambda *row: landed.append(row[2]))
    assert sorted(landed) == sorted(DURATIONS)
    return stats.wall_seconds


def _sweep_cells(seed):
    platform = PlatformSpec(kind="dumbbell", n_flows=2, seed=seed)
    cells = [Cell(platform=platform, warmup=1.0, window=2.0)]
    for gamma in (0.3, 0.6):
        cells.append(Cell(
            platform=platform, warmup=1.0, window=2.0,
            train=PulseTrain.from_gamma(
                gamma=gamma, rate_bps=mbps(30), extent=ms(100),
                bottleneck_bps=mbps(15), n_pulses=3),
        ))
    return cells


def _fingerprint(results):
    return hashlib.sha256(repr(results).encode()).hexdigest()


def _fingerprints_across_placements():
    cells = _sweep_cells(seed=11) + _sweep_cells(seed=12)
    prints = {}
    with ExperimentRunner(jobs=1) as runner:
        prints["serial"] = _fingerprint(runner.measure_many(cells))
    with ExperimentRunner(jobs=2) as runner:
        prints["pool"] = _fingerprint(runner.measure_many(cells))
    with ExperimentRunner(fabric=2) as runner:
        prints["fabric"] = _fingerprint(runner.measure_many(cells))
    return prints


def _lease_expiry_requeue(tmp_path):
    """A silent worker's lease lapses; the group is stolen and finishes."""
    path = tmp_path / "requeue.sqlite"
    queue = LeaseQueue(path)
    batch, _ = queue.enqueue_batch(
        [("wkey", [("key", pickle.dumps(functools.partial(_sleep_task,
                                                          0.01)))])])
    assert queue.lease("victim", ttl=0.01) is not None
    time.sleep(0.05)  # the victim never heartbeats: lease expires
    served = worker_main(path, worker_id="rescuer", once=True)
    requeued = queue.requeued_groups(batch)
    (row,) = queue.take_completed(batch)
    queue.close()
    assert served == 1
    assert requeued == 1
    assert row.worker == "rescuer"
    return requeued


def test_fabric_beats_static_chunking(benchmark, record_result, tmp_path):
    with concurrent.futures.ProcessPoolExecutor(
            max_workers=WORKERS) as pool:
        list(pool.map(_sleep_task, [0.0] * WORKERS))  # spin up workers
        _, static_wall, static_reps = best_of_reps(3, _static_pool_wall,
                                                   pool)

    # Every round gets fresh task keys: identical keys would hit the
    # queue's durable-reuse path and skip the dispatch being timed.
    tags = itertools.count()

    broker = FabricBroker(tmp_path / "bench.sqlite",
                          spawn_workers=WORKERS, ttl=10.0)
    try:
        broker.ensure_workers()

        def one_round():
            return _fabric_wall(broker, f"round{next(tags)}")

        one_round()  # warm: workers leased + sqlite pages hot
        run_once(benchmark, one_round)
        _, fabric_wall, fabric_reps = best_of_reps(
            3, one_round, wall_of=lambda wall: wall)
    finally:
        broker.close()

    speedup = static_wall / fabric_wall
    prints = _fingerprints_across_placements()
    requeued = _lease_expiry_requeue(tmp_path)

    total = sum(DURATIONS)
    rows = [
        f"Fabric bench -- {len(DURATIONS)} skewed tasks "
        f"({total:.1f}s of sleep) at {WORKERS} workers",
        f"{'dispatch':<22} {'wall':>8}",
        f"{'static chunks (=2)':<22} {static_wall:>7.2f}s   "
        + format_reps(static_reps),
        f"{'work-stealing fabric':<22} {fabric_wall:>7.2f}s   "
        + format_reps(fabric_reps),
        f"speedup: {speedup:.2f}x (gate: >= 1.30x)",
        f"placement fingerprints: serial==pool=={prints['serial'][:12]} "
        f"fabric=={prints['fabric'][:12]}",
        f"lease-expiry re-queues completed: {requeued}",
    ]
    record_result("fabric", "\n".join(rows), data={
        "workers": WORKERS,
        "task_seconds": list(DURATIONS),
        "static_wall": static_wall,
        "fabric_wall": fabric_wall,
        "speedup": speedup,
        "gate": "speedup >= 1.3",
        "fingerprints": prints,
        "requeued_groups": requeued,
    })

    assert prints["pool"] == prints["serial"]
    assert prints["fabric"] == prints["serial"]
    assert speedup >= 1.3, (
        f"work-stealing gained only {speedup:.2f}x over static chunking"
    )
