"""Bench: the compiled forwarding plane vs the dict-lookup path.

Three measurements, one per layer of the claim:

**Scenario** (informational + the hard contract) -- the 10k-flow
many-flows dumbbell runs once per forwarding plane and must dispatch
**bit-identically**: same events executed, same goodput, same
``state_digest``.  The events/sec ratio is archived informationally:
profiling puts route lookup + the per-hop ``Node.receive`` frame at
~10% of scenario runtime, so Amdahl caps the end-to-end win in single
digits even though the forwarding core itself is several times faster.

**Hop circulation** (informational) -- a router chain with packets
bouncing end to end through the production ``Link.send`` path, the
highest-forwarding-fraction *event-driven* loop available.  Event
parity between the planes is part of the bit-identicality design, so
the delta here is exactly the eliminated per-hop frame and probes.

**Resolution core** (the gated number) -- the forwarding decision the
tentpole replaced, measured on real compiled node state: the dict
plane's two-probe sequence (``_routes.get`` then ``_links[hop]`` then
the ``.send`` attribute load, exactly ``Node.receive``'s lines)
against the compiled plane's dense-table load (``_next_send[dst]``,
exactly ``Link.send``'s resolution lines) over a randomized
destination workload on a 2k-entry router.  Gate: **compiled >= 1.3x
dict**, best-of-3 alternating.

Methodology: single-CPU boxes tax whichever run touches memory first,
so each part runs a throwaway warm-up and then alternates planes,
comparing best-of.
"""

import random
import time

from benchmarks.conftest import format_reps, run_once
from repro.sim.engine import Simulator
from repro.sim.packet import FULL_PACKET_BYTES, Packet, PacketKind
from repro.sim.routing import GraphTopology
from repro.sim.topology import DumbbellConfig, build_dumbbell
from repro.util.errors import SimulationError
from repro.util.units import mbps

#: Scenario scale mirrors test_bench_many_flows: 60 kb/s per flow and
#: a rule-of-thumb buffer.
N_FLOWS = 10_000
BOTTLENECK_BPS = mbps(600)
BUFFER_BYTES = 1500 * FULL_PACKET_BYTES
HORIZON = 1.0
SCENARIO_REPS = 2

#: Hop-circulation loop: chain length, leaf fan-out, circulating
#: packets, events timed per rep.
CHAIN_ROUTERS = 8
CHAIN_LEAVES = 6
CHAIN_PACKETS = 64
CHAIN_EVENTS = 300_000
CHAIN_REPS = 3

#: Resolution-core gate: table size, workload draws, loop reps.
CORE_DESTINATIONS = 2_000
CORE_WORKLOAD = 5_000
CORE_LOOPS = 40
CORE_REPS = 3
GATE_MIN_RATIO = 1.3


# ----------------------------------------------------------------------
# scenario: 10k flows, bit-identical planes
# ----------------------------------------------------------------------
def _run_scenario(forwarding):
    """One full many-flows run; returns (stats, fingerprint)."""
    config = DumbbellConfig(
        n_flows=N_FLOWS,
        bottleneck_rate_bps=BOTTLENECK_BPS,
        buffer_bytes=BUFFER_BYTES,
        forwarding=forwarding,
    )
    net = build_dumbbell(config)
    net.start_flows()
    started = time.perf_counter()
    net.run(until=HORIZON)
    wall = time.perf_counter() - started
    sim = net.sim
    stats = {
        "wall": wall,
        "events": sim.events_executed,
        "events_per_sec": sim.events_executed / wall,
    }
    fingerprint = (
        sim.events_executed,
        net.aggregate_goodput_bytes(),
        sim.state_digest(),
    )
    return stats, fingerprint


def _bench_scenario():
    _run_scenario("compiled")  # pay the allocator/page-fault tax once
    walls = {"compiled": [], "dict": []}
    best = {}
    prints = {}
    for _ in range(SCENARIO_REPS):
        for plane in ("dict", "compiled"):
            stats, fingerprint = _run_scenario(plane)
            walls[plane].append(stats["wall"])
            prints[plane] = fingerprint
            if plane not in best or stats["wall"] < best[plane]["wall"]:
                best[plane] = stats
    return best, walls, prints


# ----------------------------------------------------------------------
# hop circulation: the production per-hop path, forwarding-heavy
# ----------------------------------------------------------------------
def _build_chain(forwarding):
    sim = Simulator()
    topo = GraphTopology(sim, forwarding=forwarding)
    routers = [topo.add_node(f"r{i}") for i in range(CHAIN_ROUTERS)]
    for a, b in zip(routers, routers[1:]):
        topo.add_duplex_link(a, b, rate_bps=1e12, delay=1e-6)
    for i, router in enumerate(routers):
        for j in range(CHAIN_LEAVES):
            leaf = topo.add_node(f"leaf{i}_{j}")
            topo.add_duplex_link(leaf, router, rate_bps=1e12, delay=1e-6)
    topo.compile_routes()
    return sim, routers


def _circulate(forwarding):
    """Self-refueling circulation; returns timed events/sec."""
    sim, routers = _build_chain(forwarding)
    head, tail = routers[0], routers[-1]

    def bounce_at_tail(packet):
        packet.src, packet.dst = packet.dst, packet.src
        tail.forward(packet)

    def bounce_at_head(packet):
        packet.src, packet.dst = packet.dst, packet.src
        head.forward(packet)

    for flow in range(CHAIN_PACKETS):
        tail.register_agent(flow, bounce_at_tail)
        head.register_agent(flow, bounce_at_head)
    Packet.reset_uids()
    for flow in range(CHAIN_PACKETS):
        head.forward(Packet(
            PacketKind.CBR, flow, head.node_id, tail.node_id,
            FULL_PACKET_BYTES,
        ))
    started = time.perf_counter()
    try:
        sim.run(max_events=CHAIN_EVENTS)
    except SimulationError:
        pass  # the budget stop is the intended exit
    return CHAIN_EVENTS / (time.perf_counter() - started)


def _bench_chain():
    _circulate("compiled")  # warm-up
    dict_rates, compiled_rates = [], []
    for _ in range(CHAIN_REPS):
        dict_rates.append(_circulate("dict"))
        compiled_rates.append(_circulate("compiled"))
    return {
        "dict_events_per_sec": max(dict_rates),
        "compiled_events_per_sec": max(compiled_rates),
        "ratio": max(compiled_rates) / max(dict_rates),
    }


# ----------------------------------------------------------------------
# resolution core: the gated number
# ----------------------------------------------------------------------
def _build_core_router(forwarding):
    """A 2-router backbone with CORE_DESTINATIONS leaves hanging off."""
    sim = Simulator()
    topo = GraphTopology(sim, forwarding=forwarding)
    r0 = topo.add_node("r0")
    r1 = topo.add_node("r1")
    topo.add_duplex_link(r0, r1, rate_bps=1e9, delay=1e-6)
    leaves = []
    for i in range(CORE_DESTINATIONS):
        leaf = topo.add_node(f"leaf{i}")
        topo.add_duplex_link(leaf, r0 if i % 2 else r1,
                             rate_bps=1e9, delay=1e-6)
        leaves.append(leaf.node_id)
    topo.compile_routes()
    return topo.nodes[0], leaves


def _dict_resolution(node, workload):
    """Node.receive's probe sequence, looped over the workload."""
    routes, links = node._routes, node._links
    default = node._default_hop
    started = time.perf_counter()
    for _ in range(CORE_LOOPS):
        for dst in workload:
            hop = routes.get(dst)
            if hop is None:
                hop = default
            send = links[hop].send  # noqa: F841 -- the measured load
    return CORE_LOOPS * len(workload) / (time.perf_counter() - started)


def _table_resolution(node, workload):
    """Link.send's compiled resolution, looped over the workload."""
    table = node._next_send
    n_dst = len(table)
    default = node._default_send
    started = time.perf_counter()
    for _ in range(CORE_LOOPS):
        for dst in workload:
            send = table[dst] if dst < n_dst else None
            if send is None:
                send = default  # noqa: F841 -- the measured load
    return CORE_LOOPS * len(workload) / (time.perf_counter() - started)


def _bench_core():
    compiled_node, leaves = _build_core_router("compiled")
    dict_node, _ = _build_core_router("dict")
    rng = random.Random(3)
    workload = [rng.choice(leaves) for _ in range(CORE_WORKLOAD)]
    _dict_resolution(dict_node, workload)  # warm-up
    _table_resolution(compiled_node, workload)
    dict_rates, table_rates = [], []
    for _ in range(CORE_REPS):
        dict_rates.append(_dict_resolution(dict_node, workload))
        table_rates.append(_table_resolution(compiled_node, workload))
    return {
        "destinations": CORE_DESTINATIONS,
        "dict_lookups_per_sec": max(dict_rates),
        "table_lookups_per_sec": max(table_rates),
        "ratio": max(table_rates) / max(dict_rates),
    }


def test_bench_forwarding(benchmark, record_result):
    best, walls, prints = run_once(benchmark, _bench_scenario)
    chain = _bench_chain()
    core = _bench_core()

    dict_s, compiled_s = best["dict"], best["compiled"]
    scenario_ratio = (
        compiled_s["events_per_sec"] / dict_s["events_per_sec"]
    )
    rows = [
        f"Forwarding-plane bench -- {N_FLOWS} flows over "
        f"{BOTTLENECK_BPS / 1e6:.0f} Mb/s, {HORIZON:.1f}s simulated, "
        f"best of {SCENARIO_REPS} alternating",
        f"{'plane':<10} {'events':>9} {'wall':>8} {'ev/s':>9}",
        f"{'dict':<10} {dict_s['events']:>9} {dict_s['wall']:>7.2f}s "
        f"{dict_s['events_per_sec']:>9.0f}",
        f"{'compiled':<10} {compiled_s['events']:>9} "
        f"{compiled_s['wall']:>7.2f}s "
        f"{compiled_s['events_per_sec']:>9.0f}"
        f"   ({scenario_ratio:.2f}x, informational)",
        f"dict walls    : {format_reps(walls['dict'])}",
        f"compiled walls: {format_reps(walls['compiled'])}",
        "",
        f"hop circulation ({CHAIN_ROUTERS}-router chain, "
        f"{CHAIN_PACKETS} packets, {CHAIN_EVENTS} events/rep, best of "
        f"{CHAIN_REPS} alternating): dict "
        f"{chain['dict_events_per_sec']:.0f} ev/s, compiled "
        f"{chain['compiled_events_per_sec']:.0f} ev/s "
        f"({chain['ratio']:.2f}x, informational)",
        "",
        f"resolution core ({core['destinations']} destinations, "
        f"{CORE_WORKLOAD} draws x {CORE_LOOPS} loops, best of "
        f"{CORE_REPS} alternating)",
        f"  dict probes: {core['dict_lookups_per_sec'] / 1e6:>6.2f}M "
        f"lookups/s",
        f"  dense table: {core['table_lookups_per_sec'] / 1e6:>6.2f}M "
        f"lookups/s   ({core['ratio']:.2f}x)  <-- gate "
        f">= {GATE_MIN_RATIO:.1f}x",
    ]
    record_result("forwarding", "\n".join(rows), data={
        "scenario": {
            "n_flows": N_FLOWS,
            "dict": dict_s,
            "compiled": compiled_s,
            "ratio": scenario_ratio,
            "dict_rep_walls": walls["dict"],
            "compiled_rep_walls": walls["compiled"],
        },
        "hop_circulation": chain,
        "resolution_core": core,
        "gate": {
            "min_ratio": GATE_MIN_RATIO,
            "measured_ratio": core["ratio"],
        },
    })

    # The hard contracts: planes are interchangeable bit-for-bit, and
    # the compiled resolution clears the core floor.
    assert prints["dict"] == prints["compiled"], (
        "compiled and dict planes dispatched differently at "
        "many-flows scale"
    )
    assert dict_s["events"] > 300_000, "scenario too quiet to measure"
    assert core["ratio"] >= GATE_MIN_RATIO, (
        f"compiled/dict resolution ratio {core['ratio']:.2f}x below "
        f"the {GATE_MIN_RATIO:.1f}x floor "
        f"(dict {core['dict_lookups_per_sec']:.0f}/s, table "
        f"{core['table_lookups_per_sec']:.0f}/s)"
    )
