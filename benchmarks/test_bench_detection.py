"""Bench (extension): detection evasion of the optimized PDoS attack.

Quantifies Section 1's claims: the tuned pulsing attack evades the
volume detector that instantly flags the equal-pulse-rate flood; the
DTW pulse detector only sees it when sampled faster than T_extent; and
the attacker's risk exponent κ controls whether the conformance
filter's average-rate floor is crossed.
"""

from benchmarks.conftest import run_once
from repro.experiments.detection_evasion import run_detection_evasion


def test_detection_evasion_matrix(benchmark, record_result):
    report = run_once(benchmark, run_detection_evasion)
    record_result("detection_evasion", report.render())

    baseline = report.scenarios["baseline"]
    pdos_neutral = report.scenarios["pdos-k1"]
    pdos_averse = report.scenarios["pdos-k8"]
    flooding = report.scenarios["flooding"]

    # No false alarms on clean traffic.
    assert not baseline.flood_verdict.detected
    assert not baseline.conformance_flagged

    # The flood trips the volume detector; both PDoS tunings evade it.
    assert flooding.flood_verdict.detected
    assert not pdos_neutral.flood_verdict.detected
    assert not pdos_averse.flood_verdict.detected

    # Fine-sampled DTW sees the pulses; coarse-sampled does not
    # (the paper's criticism of reference [8]).
    assert pdos_neutral.dtw_fast.detected
    assert pdos_averse.dtw_fast.detected
    assert not pdos_neutral.dtw_slow.detected
    assert not pdos_averse.dtw_slow.detected

    # The risk-averse tuning slips under the conformance rate floor.
    assert pdos_neutral.conformance_flagged
    assert not pdos_averse.conformance_flagged
    assert flooding.conformance_flagged
