"""Bench: scheduler backends at 10k+ flows (mice and elephants).

Two measurements, one per layer of the claim:

**Scenario** -- a mice-and-elephants population at many-flows scale:
10,000 elephant NewReno flows over a 600 Mb/s RED bottleneck (bandwidth
and the rule-of-thumb buffer scaled with the flock, after the
buffer-sizing literature the many-flows extension cites), plus a churn
of short mice transfers on an extra host pair.  The same scenario runs
once per backend and must dispatch **bit-identically**: same events
executed, same goodput, same ``state_digest``.  The throughput ratio is
archived informationally: at this depth (~40k pending entries) the
scheduler is only about a third of total runtime, so Amdahl caps the
end-to-end win near 1.2x even where the scheduler-only win is far
larger.

**Scheduler core** (the gated number) -- a hold-depth churn loop: N
self-rescheduling timers, so every dispatch pops the head and pushes a
successor ~0.5-1 s out while the pending set stays N deep.  This is the
engine's hot loop with nothing else in the way, the regime the calendar
queue exists for: the heap pays O(log N) per op and decays with depth,
the calendar stays O(1) amortized and flat.  Gate: **calendar >= 1.5x
heap at 300k pending**, best-of-3.  A depth ramp (5k / 50k / 300k) is
archived alongside so the crossover is visible in the trajectory.

Methodology: single-CPU boxes tax whichever run touches memory first
(allocator growth, page faults), so each part runs a throwaway warm-up
and then alternates heap/calendar reps, comparing best-of.
"""

import time

from benchmarks.conftest import format_reps, run_once
from repro.sim.engine import Simulator
from repro.sim.topology import (
    FULL_PACKET_BYTES,
    DumbbellConfig,
    build_dumbbell,
)
from repro.sim.workload import ShortFlowWorkload
from repro.util.errors import SimulationError
from repro.util.units import mbps, ms

#: Elephants in the flock; mice arrive on top via the workload.
N_FLOWS = 10_000
#: Bottleneck scaled with the flock (60 kb/s per flow, as in the
#: many-flows extension experiment) and a rule-of-thumb buffer.
BOTTLENECK_BPS = mbps(600)
BUFFER_BYTES = 1500 * FULL_PACKET_BYTES
HORIZON = 1.5
SCENARIO_REPS = 2

#: Scheduler-core gate: held pending depth, events timed per rep, reps.
GATE_DEPTH = 300_000
GATE_MIN_RATIO = 1.5
CORE_EVENTS = 400_000
CORE_REPS = 3
#: Ungated ramp rows showing where the crossover sits.
RAMP_DEPTHS = (5_000, 50_000, GATE_DEPTH)


def _run_scenario(scheduler):
    """One full mice-and-elephants run; returns (stats, fingerprint)."""
    config = DumbbellConfig(
        n_flows=N_FLOWS,
        bottleneck_rate_bps=BOTTLENECK_BPS,
        buffer_bytes=BUFFER_BYTES,
        scheduler=scheduler,
    )
    net = build_dumbbell(config)
    mice_src, mice_dst = net.add_host_pair(rtt=ms(100))
    workload = ShortFlowWorkload(
        net.sim, mice_src, mice_dst, tcp=config.tcp,
        mean_size_segments=15.0, mean_interarrival=0.01, seed=11,
    )
    net.start_flows()
    workload.start()
    started = time.perf_counter()
    net.run(until=HORIZON)
    wall = time.perf_counter() - started
    workload.finalize()
    sim = net.sim
    stats = {
        "wall": wall,
        "events": sim.events_executed,
        "events_per_sec": sim.events_executed / wall,
        "pending_live": sim.pending_events,
        "pending_raw": sim.pending_entries,
        "mice_launched": workload.launched,
    }
    fingerprint = (
        sim.events_executed,
        net.aggregate_goodput_bytes(),
        workload.launched,
        sim.state_digest(),
    )
    return stats, fingerprint


def _churn(scheduler, depth, events):
    """Hold-depth churn: every dispatch reschedules itself ~0.5-1s out."""
    sim = Simulator(scheduler=scheduler)

    def fire(i, gap):
        sim._push_transient(sim._now + gap, fire, (i, gap))

    for i in range(depth):
        gap = 0.5 + ((i * 2654435761) % 1000) / 2000.0
        sim.schedule(gap * ((i % 97) + 1) / 97.0, fire, i, gap)
    started = time.perf_counter()
    try:
        sim.run(max_events=events)
    except SimulationError:
        pass  # the budget stop is the intended exit
    return events / (time.perf_counter() - started)


def _bench_scenario():
    """Alternating best-of reps per backend, after one warm-up run."""
    _run_scenario("heap")  # pay the allocator/page-fault tax once
    walls = {"heap": [], "calendar": []}
    best = {}
    prints = {}
    for _ in range(SCENARIO_REPS):
        for scheduler in ("heap", "calendar"):
            stats, fingerprint = _run_scenario(scheduler)
            walls[scheduler].append(stats["wall"])
            prints[scheduler] = fingerprint
            if (scheduler not in best
                    or stats["wall"] < best[scheduler]["wall"]):
                best[scheduler] = stats
    return best, walls, prints


def _bench_core():
    """The depth ramp, alternating backends; the last row is the gate."""
    _churn("heap", 20_000, 100_000)  # warm-up
    rows = []
    for depth in RAMP_DEPTHS:
        heap_rates, cal_rates = [], []
        for _ in range(CORE_REPS):
            heap_rates.append(_churn("heap", depth, CORE_EVENTS))
            cal_rates.append(_churn("calendar", depth, CORE_EVENTS))
        rows.append({
            "depth": depth,
            "heap_events_per_sec": max(heap_rates),
            "calendar_events_per_sec": max(cal_rates),
            "ratio": max(cal_rates) / max(heap_rates),
        })
    return rows


def test_bench_many_flows(benchmark, record_result):
    best, walls, prints = run_once(benchmark, _bench_scenario)
    core = _bench_core()

    heap, cal = best["heap"], best["calendar"]
    scenario_ratio = cal["events_per_sec"] / heap["events_per_sec"]
    gate = core[-1]
    rows = [
        f"Many-flows bench -- {N_FLOWS} elephants + mice over "
        f"{BOTTLENECK_BPS / 1e6:.0f} Mb/s, {HORIZON:.1f}s simulated, "
        f"best of {SCENARIO_REPS} alternating",
        f"{'backend':<10} {'events':>9} {'wall':>8} {'ev/s':>9} "
        f"{'pending':>9}",
        f"{'heap':<10} {heap['events']:>9} {heap['wall']:>7.2f}s "
        f"{heap['events_per_sec']:>9.0f} {heap['pending_live']:>9}",
        f"{'calendar':<10} {cal['events']:>9} {cal['wall']:>7.2f}s "
        f"{cal['events_per_sec']:>9.0f} {cal['pending_live']:>9}"
        f"   ({scenario_ratio:.2f}x, informational)",
        f"heap walls    : {format_reps(walls['heap'])}",
        f"calendar walls: {format_reps(walls['calendar'])}",
        "",
        f"scheduler-core churn (self-rescheduling timers, "
        f"{CORE_EVENTS} events/rep, best of {CORE_REPS} alternating)",
        f"{'depth':>8} {'heap ev/s':>10} {'calendar ev/s':>14} "
        f"{'ratio':>7}",
    ]
    for row in core:
        marker = "  <-- gate" if row["depth"] == GATE_DEPTH else ""
        rows.append(
            f"{row['depth']:>8} {row['heap_events_per_sec']:>10.0f} "
            f"{row['calendar_events_per_sec']:>14.0f} "
            f"{row['ratio']:>6.2f}x{marker}"
        )
    record_result("many_flows", "\n".join(rows), data={
        "scenario": {
            "n_flows": N_FLOWS,
            "heap": heap,
            "calendar": cal,
            "ratio": scenario_ratio,
            "heap_rep_walls": walls["heap"],
            "calendar_rep_walls": walls["calendar"],
        },
        "scheduler_core": core,
        "gate": {
            "depth": GATE_DEPTH,
            "min_ratio": GATE_MIN_RATIO,
            "measured_ratio": gate["ratio"],
        },
    })

    # The hard contracts: backends are interchangeable bit-for-bit,
    # and the calendar clears the scheduler-core floor at depth.
    assert prints["heap"] == prints["calendar"], (
        "heap and calendar dispatched differently at many-flows scale"
    )
    assert heap["events"] > 300_000, "scenario too quiet to measure"
    assert gate["ratio"] >= GATE_MIN_RATIO, (
        f"calendar/heap ratio {gate['ratio']:.2f}x at depth "
        f"{GATE_DEPTH} below the {GATE_MIN_RATIO:.1f}x floor "
        f"(heap {gate['heap_events_per_sec']:.0f} ev/s, calendar "
        f"{gate['calendar_events_per_sec']:.0f} ev/s)"
    )
