"""Bench: warm-start checkpointing vs from-scratch warm-ups.

Times one representative multi-γ attack panel -- the shape every gain
figure sweeps -- with warm-start scheduling on and off, best of three
runs each, and archives the comparison.  The checks encode the
subsystem's two contracts:

* results are bit-identical with and without warm starts;
* sharing the warm-up prefix is at least 1.2x faster at ``jobs=1`` on a
  panel whose warm-up dominates the per-cell simulation (the paper's
  sweeps warm up for 6-10 s and measure 20-50 s windows at full scale;
  this bench uses the smoke-scale 6 s warm-up / 2 s window, where the
  prefix is ~75% of each cell).
"""

import time

from benchmarks.conftest import best_of_reps, format_reps, run_once
from repro.core.attack import PulseTrain
from repro.runner import Cell, ExperimentRunner, PlatformSpec
from repro.util.units import mbps, ms

BEST_OF = 3
GAMMAS = (0.3, 0.45, 0.6, 0.75, 0.9, 1.2)
WARMUP = 6.0
WINDOW = 2.0


def _panel():
    platform = PlatformSpec(kind="dumbbell", n_flows=15, seed=42)
    baseline = Cell(platform=platform, warmup=WARMUP, window=WINDOW)
    return [baseline] + [
        Cell(
            platform=platform, warmup=WARMUP, window=WINDOW,
            train=PulseTrain.from_gamma(
                gamma=gamma, rate_bps=mbps(60), extent=ms(100),
                bottleneck_bps=mbps(15), n_pulses=2,
            ),
        )
        for gamma in GAMMAS
    ]


def _best_of(warm_start):
    """Best wall time over BEST_OF fresh-runner executions."""

    def _run():
        runner = ExperimentRunner(jobs=1, warm_start=warm_start)
        started = time.perf_counter()
        results = runner.measure_many(_panel())
        return results, time.perf_counter() - started

    (results, _), best_wall, rep_walls = best_of_reps(
        BEST_OF, _run, wall_of=lambda run: run[1])
    return results, best_wall, rep_walls


def test_warm_start_speedup(benchmark, record_result):
    cold_results, cold_wall, cold_reps = _best_of(warm_start=False)
    warm_results, warm_wall, warm_reps = run_once(benchmark, _best_of, True)

    speedup = cold_wall / max(warm_wall, 1e-9)
    cells = len(_panel())
    rows = [
        f"Warm-start bench -- one {len(GAMMAS)}-gamma panel + baseline "
        f"({cells} cells, 15 flows, {WARMUP:.0f}s warm-up / "
        f"{WINDOW:.0f}s window), best of {BEST_OF}, jobs=1",
        f"{'mode':<16} {'wall':>8}",
        f"{'from scratch':<16} {cold_wall:>7.2f}s  ({format_reps(cold_reps)})",
        f"{'warm-start':<16} {warm_wall:>7.2f}s ({speedup:.2f}x)  "
        f"({format_reps(warm_reps)})",
    ]
    record_result("warm_start", "\n".join(rows), data={
        "cold_wall": cold_wall, "cold_rep_walls": cold_reps,
        "warm_wall": warm_wall, "warm_rep_walls": warm_reps,
        "speedup": speedup, "gate_min_speedup": 1.2,
    })

    assert warm_results == cold_results  # bit-identical, field for field
    assert speedup >= 1.2, (
        f"warm-start speedup {speedup:.2f}x below the 1.2x floor "
        f"(cold {cold_wall:.2f}s, warm {warm_wall:.2f}s)"
    )
