"""Bench (extension): per-flow damage + victim-variant resilience.

Two defender-side analyses: the distribution of damage across the RTT
spread (with Jain's fairness index), and the resilience ordering of the
victim TCP variants (Tahoe / Reno / NewReno / SACK) under the identical
attack.
"""

from benchmarks.conftest import run_once
from repro.experiments.ablation_victim import run_victim_ablation
from repro.experiments.flow_damage import run_flow_damage
from repro.sim.tcp import TCPVariant


def test_per_flow_damage(benchmark, record_result):
    report = run_once(benchmark, run_flow_damage)
    record_result("flow_damage", report.render())
    assert all(d.degradation > 0.1 for d in report.damages)


def test_victim_variant_resilience(benchmark, record_result):
    ablation = run_once(benchmark, run_victim_ablation)
    record_result("ablation_victim", ablation.render())
    # The attack works against every variant (its leverage is AIMD) ...
    for variant in ablation.curves:
        assert ablation.mean_degradation(variant) > 0.3
    # ... and SACK, the best recovery, suffers no more than NewReno.
    assert (
        ablation.mean_degradation(TCPVariant.SACK)
        <= ablation.mean_degradation(TCPVariant.NEWRENO) + 0.05
    )
