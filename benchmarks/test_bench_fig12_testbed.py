"""Bench: Fig. 12 -- test-bed gain curves.

Sweeps R_attack ∈ {15, 20, 30} Mb/s at T_extent = 150 ms over the
Dummynet emulation (10 flows, 10 Mb/s RED pipe, Linux 200 ms RTO_min)
and checks the paper's orderings: higher pulse rates win, and all three
curves follow the analytical trend (rising damage, falling gain past
the maximization point).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.fig12_testbed import run_fig12


def test_fig12_testbed_curves(benchmark, record_result):
    fig = run_once(benchmark, run_fig12)
    record_result("fig12_testbed", fig.render())

    by_rate = {curve.rate_bps: curve for curve in fig.curves}
    mean_damage = {
        rate: float(np.mean([p.measured_degradation for p in curve.points]))
        for rate, curve in by_rate.items()
    }
    # Higher pulse rate -> more damage at the same duty cycles.
    assert mean_damage[30e6] > mean_damage[15e6]

    for curve in fig.curves:
        # Damage Γ grows with gamma along each curve (trend match).
        degradations = [p.measured_degradation for p in curve.points]
        assert degradations[-1] > degradations[0]
        # The risk-discounted gain declines toward gamma -> 1.
        gains = [p.measured_gain for p in curve.points]
        assert gains[-1] < max(gains)
