"""Bench (extension): defense evaluations.

Two defense claims made quantitative:

* randomized RTO (the paper's reference [7]) defends the timeout-based
  shrew attack but not the AIMD-based attack (Section 1.1's argument);
* a CHOKe bottleneck (the RED-hardening direction of the conclusions)
  takes back part of the attacker's gain by matching-and-dropping the
  unresponsive pulse flow against itself.
"""

from benchmarks.conftest import run_once
from repro.experiments.defenses import run_aqm_hardening, run_rto_randomization


def test_rto_randomization_defense(benchmark, record_result):
    result = run_once(benchmark, run_rto_randomization)
    record_result("defense_rto_randomization", result.render())
    # Strong recovery against the shrew attack; weak against AIMD-based.
    assert result.shrew_recovery() > 0.25
    assert result.aimd_recovery() < result.shrew_recovery() / 2


def test_choke_hardening(benchmark, record_result):
    result = run_once(benchmark, run_aqm_hardening)
    record_result("defense_choke_hardening", result.render())
    assert result.mean_gain_reduction() > 0.0
