"""Bench: Fig. 4 -- risk-preference curves (1 − γ)^κ.

Purely analytical; the bench verifies the three behavioural shapes the
figure annotates (risk-loving concave, risk-neutral linear, risk-averse
convex) and archives the sampled family.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.gain import RiskPreference
from repro.experiments.fig04_risk import run_fig04


def test_fig04_risk_preference_curves(benchmark, record_result):
    curves = run_once(benchmark, run_fig04, kappas=(0.5, 1.0, 3.0),
                      n_points=11)
    record_result("fig04_risk", curves.render())

    classes = curves.classes()
    assert classes[0.5] is RiskPreference.RISK_LOVING
    assert classes[1.0] is RiskPreference.RISK_NEUTRAL
    assert classes[3.0] is RiskPreference.RISK_AVERSE

    mid = len(curves.gammas) // 2
    loving, neutral, averse = (curves.curves[k][mid] for k in (0.5, 1.0, 3.0))
    # At any interior gamma the curves are strictly ordered (Fig. 4).
    assert loving > neutral > averse
