"""Bench: adaptive planner vs exact dense sweep on a gain-figure panel.

Resolves the same three-extent gain panel (the shape of a Fig. 6-9
figure) two ways and compares wall time and answers:

* **exact** -- a dense γ grid at the planner's target resolution
  (0.05 over [0.1, 0.9] -> 17 γ per curve), full measurement windows,
  the default bit-identical path.  This is what localizing γ* to
  ±0.05 costs without adaptivity.
* **fast** -- :func:`repro.runner.planner.run_planned_sweep` with the
  default :class:`FAST_POLICY`: coarse-to-fine refinement toward the
  empirical peak, CI-driven seed allocation, and in-sim convergence
  early-exit.

Gates (the ISSUE's acceptance bar):

* fast resolves the panel >= 1.5x faster (target: 3x);
* each fast γ* lands within one coarse-grid step of the exact argmax;
* the exact peak gain sits inside the planner's reported CI (with an
  absolute floor -- a 1-2 seed CI can be narrower than the exact
  path's byte-based vs rate-based measurement difference).

Results (including per-γ* rows the docs cite) are archived to
``benchmarks/results/planner.txt``.
"""

import time

from benchmarks.conftest import best_of_reps, format_reps, run_once
from repro.experiments.base import (
    DumbbellPlatform,
    plan_gain_sweep,
    run_gain_sweeps,
)
from repro.runner import ExperimentRunner
from repro.runner.planner import FAST_POLICY, run_planned_sweep
from repro.util.units import mbps, ms

RATE = mbps(30)
EXTENTS = (ms(50), ms(75), ms(100))
N_FLOWS = 15
SEED = 42
#: Near-paper-scale measurement window (full scale is 50 s): the
#: longer the window, the more an in-sim convergence exit saves, so
#: the smoke-scale 20 s default would understate the fast path.
WARMUP = 6.0
WINDOW = 40.0

#: Exact side: dense grid at the planner's γ* resolution.
DENSE_STEP = FAST_POLICY.gamma_resolution
DENSE_GAMMAS = tuple(
    round(0.1 + i * DENSE_STEP, 10)
    for i in range(int(round((0.9 - 0.1) / DENSE_STEP)) + 1)
)

#: One coarse-grid step -- the γ* agreement bar.
COARSE_STEP = (0.9 - 0.1) / (FAST_POLICY.coarse_points - 1)

#: Absolute CI floor for the peak-gain agreement check (see module doc).
CI_FLOOR = 0.05

SPEEDUP_GATE = 1.5


def _platform():
    return DumbbellPlatform(n_flows=N_FLOWS, seed=SEED)


def _run_exact():
    """The dense panel through the default exact path, timed."""
    runner = ExperimentRunner(jobs=1, cache_dir=None)
    platform = _platform()
    plans = [
        plan_gain_sweep(
            platform, rate_bps=RATE, extent=extent, gammas=DENSE_GAMMAS,
            warmup=WARMUP, window=WINDOW,
            label=f"T_extent={extent * 1e3:.0f}ms",
        )
        for extent in EXTENTS
    ]
    started = time.perf_counter()
    curves = run_gain_sweeps(plans, runner=runner)
    return curves, time.perf_counter() - started, runner


def _run_fast():
    """The same panel through the adaptive planner, timed."""
    runner = ExperimentRunner(jobs=1, cache_dir=None)
    platform = _platform()
    started = time.perf_counter()
    sweeps = [
        run_planned_sweep(
            platform, rate_bps=RATE, extent=extent,
            warmup=WARMUP, window=WINDOW,
            label=f"T_extent={extent * 1e3:.0f}ms [fast]",
            policy=FAST_POLICY, runner=runner,
        )
        for extent in EXTENTS
    ]
    return sweeps, time.perf_counter() - started, runner


def test_bench_planner(benchmark, record_result):
    curves, exact_wall, exact_runner = _run_exact()
    (sweeps, fast_wall, fast_runner), _, rep_walls = run_once(
        benchmark, best_of_reps, 1, _run_fast, wall_of=lambda run: run[1])

    speedup = exact_wall / max(fast_wall, 1e-9)
    rows = [
        "Planner bench -- three-extent gain panel "
        f"(R_attack={RATE / 1e6:.0f}M, {N_FLOWS} flows, "
        f"{WARMUP:.0f}s warm-up / {WINDOW:.0f}s window), jobs=1",
        f"exact: dense {len(DENSE_GAMMAS)}-gamma grid "
        f"(step {DENSE_STEP:.2f}) per extent; "
        "fast: adaptive planner (FAST_POLICY)",
        f"{'mode':<8} {'wall':>8}",
        f"{'exact':<8} {exact_wall:>7.2f}s",
        f"{'fast':<8} {fast_wall:>7.2f}s ({speedup:.2f}x)  "
        f"({format_reps(rep_walls)})",
        "",
        f"{'extent':<8} {'exact g*':>9} {'exact G':>8} "
        f"{'fast g*':>8} {'fast G':>7} {'CI':>6} {'seeds':>6}",
    ]
    for extent, curve, sweep in zip(EXTENTS, curves, sweeps):
        exact_peak = curve.peak_measured()
        rows.append(
            f"{extent * 1e3:>5.0f}ms  {exact_peak.gamma:>9.3f} "
            f"{exact_peak.measured_gain:>8.3f} {sweep.gamma_star:>8.3f} "
            f"{sweep.gain_at_peak:>7.3f} {sweep.ci_at_peak:>6.3f} "
            f"{sweep.seeds_at_peak:>6}"
        )
    rows.append("")
    rows.extend(sweep.summary() for sweep in sweeps)
    rows.append(f"fast runner: {fast_runner.stats.summary()}")
    rows.append(f"exact runner: {exact_runner.stats.summary()}")
    record_result("planner", "\n".join(rows), data={
        "exact_wall": exact_wall, "fast_wall": fast_wall,
        "speedup": speedup, "rep_walls": rep_walls,
    })

    # The planner actually adapted: the fluid pre-pass localized every
    # panel (FAST_POLICY ships with it, which is also why refinement
    # rounds are 0 -- the confirm grid is already at target
    # resolution), and early exits happened.
    stats = fast_runner.stats
    assert stats.fluid_cells > 0
    assert stats.truncated_cells > 0
    assert stats.planner_cells_saved > 0

    for extent, curve, sweep in zip(EXTENTS, curves, sweeps):
        exact_peak = curve.peak_measured()
        assert abs(sweep.gamma_star - exact_peak.gamma) <= COARSE_STEP + 1e-9, (
            f"extent {extent * 1e3:.0f}ms: planner gamma*="
            f"{sweep.gamma_star:.3f} is more than one coarse step "
            f"({COARSE_STEP:.2f}) from the exact argmax "
            f"{exact_peak.gamma:.3f}"
        )
        tolerance = max(sweep.ci_at_peak, CI_FLOOR)
        assert abs(sweep.gain_at_peak - exact_peak.measured_gain) <= tolerance, (
            f"extent {extent * 1e3:.0f}ms: planner peak G="
            f"{sweep.gain_at_peak:.3f} vs exact {exact_peak.measured_gain:.3f} "
            f"differs by more than {tolerance:.3f}"
        )

    assert speedup >= SPEEDUP_GATE, (
        f"planner speedup {speedup:.2f}x below the {SPEEDUP_GATE}x gate "
        f"(exact {exact_wall:.2f}s, fast {fast_wall:.2f}s)"
    )
