"""Bench: Fig. 3 -- the quasi-global synchronization phenomenon.

Fig. 3(a): ns-2 dumbbell, 24 flows, A(50 ms, 100 Mb/s, 1950 ms) -- the
paper counts 30 pinnacles in 60 s, i.e. the traffic period equals the
2 s attack period.  Fig. 3(b): test-bed, 15 flows,
A(100 ms, 50 Mb/s, 2400 ms) -- 24 pinnacles in 60 s, period 2.5 s.

Scaled runs use a shorter window; the *period* consistency check is
scale-free.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig03_sync import run_fig03_ns2, run_fig03_testbed


def test_fig03a_ns2_synchronization(benchmark, record_result):
    result = run_once(benchmark, run_fig03_ns2)
    record_result("fig03a_sync_ns2", result.render())
    # Paper: the traffic period equals the attack period (2 s).
    assert result.report.consistent_with(result.attack_period)
    # Pinnacle count within one of the expected count for the window.
    assert abs(result.report.pinnacles - result.expected_pinnacles) <= 1


def test_fig03b_testbed_synchronization(benchmark, record_result):
    result = run_once(benchmark, run_fig03_testbed)
    record_result("fig03b_sync_testbed", result.render())
    # Paper: the traffic period equals the attack period (2.5 s).
    assert result.report.consistent_with(result.attack_period)
    assert abs(result.report.pinnacles - result.expected_pinnacles) <= 1
