"""Bench: Figs. 6-9 -- attack gain vs γ, analysis vs simulation.

One test per figure (R_attack = 25 / 30 / 35 / 40 Mb/s), each sweeping
the T_extent ∈ {50, 75, 100} ms series across the flow-count panels and
γ grid.  The shape checks encode the paper's qualitative findings:

* the measured gain has an interior maximum in γ (the headline result:
  a tuned pulsing attack beats both very sparse and near-flooding
  tunings once detection risk is priced in);
* longer pulses inflict at least as much damage as shorter ones
  (Section 4.1.1's under-gain explanation);
* on the right-hand side of the maximization point the measured curve
  tracks the analytical one (Section 4.1.2).
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.experiments.fig06_09_gain import run_gain_figure


def _check_figure_shape(fig):
    for curves in fig.panels.values():
        extents = [curve.extent for curve in curves]
        mean_degradation = [
            float(np.mean([p.measured_degradation for p in curve.points]))
            for curve in curves
        ]
        # Longer pulses hurt at least as much (generous 10% slack for
        # simulation noise).
        for (e1, d1), (e2, d2) in zip(
            sorted(zip(extents, mean_degradation)),
            sorted(zip(extents, mean_degradation))[1:],
        ):
            assert d2 >= d1 - 0.1, (e1, d1, e2, d2)
        for curve in curves:
            gains = [p.measured_gain for p in curve.points]
            # Interior maximum: the best measured gain beats the gamma=0.9
            # endpoint decisively (near-flooding is a poor trade).
            assert max(gains) > gains[-1] + 0.05
            # Right-hand-side agreement (Section 4.1.2): at the largest
            # swept gamma the model and the measurement are close.
            last = curve.points[-1]
            assert last.measured_gain == pytest.approx(
                last.analytic_gain, abs=0.12
            )


@pytest.mark.parametrize("figure", [6, 7, 8, 9])
def test_gain_figures(benchmark, record_result, figure):
    fig = run_once(benchmark, run_gain_figure, figure)
    record_result(f"fig{figure:02d}_gain", fig.render())
    _check_figure_shape(fig)
