"""Bench (extension): distributed (DDoS) deployments of one attack.

One logical pulse train deployed three ways -- single source,
synchronized k-way rate split, interleaved k-way time split.  The
victim-side schedule is identical, so the damage must match while each
split source's average rate (and hence its per-source detectability)
drops by k.
"""

from benchmarks.conftest import run_once
from repro.experiments.distributed_attack import run_distributed_attack


def test_distributed_deployments(benchmark, record_result):
    result = run_once(benchmark, run_distributed_attack)
    record_result("distributed_attack", result.render())

    degradations = [o.degradation for o in result.outcomes.values()]
    assert max(degradations) - min(degradations) < 0.15
    assert result.outcomes["single"].flagged_sources == 1
    assert result.outcomes["synchronized"].flagged_sources == 0
    assert result.outcomes["interleaved"].flagged_sources == 0
