"""CI smoke: a gain sweep through the fabric survives a worker kill.

Runs one small two-prefix gain sweep twice -- serially, then through
the work-stealing fabric with 2 local workers while a background thread
SIGKILLs one of them mid-batch -- and asserts the results are
bit-identical.  The durable lease queue is left at
``benchmarks/results/fabric_queue.sqlite`` so CI can upload it as an
artifact: its ``groups.attempts`` column is the forensic record of the
kill (any value > 1 is a stolen lease).

Usage: ``PYTHONPATH=src python benchmarks/fabric_smoke.py``
Exits non-zero on any mismatch.
"""

import os
import pathlib
import signal
import sqlite3
import sys
import threading
import time

from repro.core.attack import PulseTrain
from repro.runner import Cell, ExperimentRunner, PlatformSpec
from repro.util.units import mbps, ms

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
QUEUE_PATH = RESULTS_DIR / "fabric_queue.sqlite"


def sweep_cells():
    cells = []
    for seed in (11, 12):
        platform = PlatformSpec(kind="dumbbell", n_flows=2, seed=seed)
        cells.append(Cell(platform=platform, warmup=1.0, window=2.0))
        for gamma in (0.3, 0.6, 0.9):
            cells.append(Cell(
                platform=platform, warmup=1.0, window=2.0,
                train=PulseTrain.from_gamma(
                    gamma=gamma, rate_bps=mbps(30), extent=ms(100),
                    bottleneck_bps=mbps(15), n_pulses=3),
            ))
    return cells


def kill_one_worker(runner, killed):
    """SIGKILL the first fabric worker to appear, mid-batch."""
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        broker = runner._broker
        if broker is not None and broker.worker_pids():
            pid = broker.worker_pids()[0]
            os.kill(pid, signal.SIGKILL)
            killed.append(pid)
            return
        time.sleep(0.02)


def main() -> int:
    RESULTS_DIR.mkdir(exist_ok=True)
    if QUEUE_PATH.exists():
        QUEUE_PATH.unlink()
    cells = sweep_cells()

    with ExperimentRunner(jobs=1) as serial_runner:
        serial = serial_runner.measure_many(cells)

    killed = []
    with ExperimentRunner(fabric=2, fabric_queue=QUEUE_PATH,
                          fabric_ttl=1.0) as fabric_runner:
        assassin = threading.Thread(
            target=kill_one_worker, args=(fabric_runner, killed))
        assassin.start()
        fabric = fabric_runner.measure_many(cells)
        assassin.join(timeout=30.0)
        requeues = fabric_runner.stats.fabric_requeues

    db = sqlite3.connect(str(QUEUE_PATH))
    (stolen,) = db.execute(
        "SELECT COUNT(*) FROM groups WHERE attempts > 1").fetchone()
    (done, total) = db.execute(
        "SELECT COUNT(*) FILTER (WHERE state = 'done'), COUNT(*) "
        "FROM tasks").fetchone()
    db.close()

    identical = fabric == serial
    print(f"fabric smoke: {len(cells)} cells, worker killed: "
          f"{killed or 'missed the window'}")
    print(f"  queue tasks done: {done}/{total}, "
          f"groups re-leased after the kill: {stolen} "
          f"(runner saw {requeues} re-queues)")
    print(f"  results bit-identical to serial: {identical}")
    print(f"  queue archived at {QUEUE_PATH}")
    if not identical:
        for index, (a, b) in enumerate(zip(serial, fabric)):
            if a != b:
                print(f"  MISMATCH cell {index}: serial={a} fabric={b}")
        return 1
    if not killed:
        # Still a pass -- the batch simply finished before the assassin
        # found a pid -- but say so: the steal path was not exercised.
        print("  note: no worker was killed; steal path not exercised")
    return 0


if __name__ == "__main__":
    sys.exit(main())
