"""Bench: simulator-core events/sec on the canonical dumbbell scenario.

Unlike the figure benches this one measures the *engine itself*: it
builds the paper's Fig. 5 dumbbell (15 NewReno flows over a 15 Mb/s RED
bottleneck), launches the canonical γ = 0.5, 100 ms-extent pulse train,
and times the raw event loop with no runner, cache, or monitors in the
way.  The recorded events/sec is the repo's performance trajectory for
the simulation hot path; results accumulate in
``benchmarks/results/sim_core.txt`` so regressions are visible per-PR.

Scale: 30 simulated seconds by default, 60 with ``REPRO_FULL=1``.
"""

import os
import time

from benchmarks.conftest import best_of_reps, format_reps, run_once
from repro.core.attack import PulseTrain
from repro.sim.topology import DumbbellConfig, build_dumbbell
from repro.util.units import mbps, ms

#: Attack starts after the flows have left slow start.
WARMUP = 2.0


def _horizon() -> float:
    full = os.environ.get("REPRO_FULL", "0") not in ("", "0", "false", "no")
    return 60.0 if full else 30.0


def _build_scenario(horizon: float):
    config = DumbbellConfig()  # the paper's defaults: 15 flows, RED
    net = build_dumbbell(config)
    train = PulseTrain.from_gamma(
        gamma=0.5, rate_bps=mbps(30), extent=ms(100),
        bottleneck_bps=config.bottleneck_rate_bps,
        n_pulses=int(horizon / 0.2) + 2,
    )
    net.start_flows()
    source = net.add_attack(train, start_time=WARMUP)
    source.start()
    return net


def _run_sim_core():
    horizon = _horizon()
    net = _build_scenario(horizon)
    started = time.perf_counter()
    net.run(until=horizon)
    wall = time.perf_counter() - started
    events = net.sim.events_executed
    return {
        "horizon": horizon,
        "events": events,
        "wall": wall,
        "events_per_sec": events / wall,
        "goodput_bytes": net.aggregate_goodput_bytes(),
        "bottleneck_packets": net.bottleneck.packets_sent,
        "attack_packets": net.attack_sources[0].packets_emitted,
    }


def best_of(n: int = 3, fn=_run_sim_core):
    """Fastest of *n* runs, with every rep's wall time attached."""
    stats, _, rep_walls = best_of_reps(
        n, fn, wall_of=lambda run: run["wall"])
    stats = dict(stats)
    stats["rep_walls"] = rep_walls
    return stats


def test_bench_sim_core(benchmark, record_result):
    stats = run_once(benchmark, best_of)
    record_result("sim_core", (
        "sim-core microbenchmark (canonical dumbbell, gamma=0.5, "
        f"T_extent=100ms, {stats['horizon']:.0f}s simulated)\n"
        f"events executed : {stats['events']}\n"
        f"wall time       : {stats['wall']:.3f} s\n"
        f"events/sec      : {stats['events_per_sec']:.0f}\n"
        f"goodput_bytes   : {stats['goodput_bytes']:.0f}\n"
        f"bottleneck pkts : {stats['bottleneck_packets']}\n"
        f"attack pkts     : {stats['attack_packets']}\n"
        f"per-rep walls   : {format_reps(stats['rep_walls'])}"
    ), data=stats)

    # The scenario must be busy enough to be a meaningful measurement.
    assert stats["events"] > 100_000
    # Sanity: the attack ran and TCP still delivered data.
    assert stats["attack_packets"] > 0
    assert stats["goodput_bytes"] > 0
