"""Bench: Fig. 1 -- the cwnd trajectory under a fixed-period attack.

Regenerates the transient + steady window trajectory of a single flow
and compares the measured pre-epoch windows with the analytical
``W_{n+1} = b^n W_1 + (1 − b^n) W_c`` and the Eq.-1 converged value.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig01_cwnd import run_fig01


def test_fig01_cwnd_trajectory(benchmark, record_result):
    result = run_once(benchmark, run_fig01)
    record_result("fig01_cwnd", result.render())

    # The transient must drive the window down from its pre-attack value ...
    first_measured = result.epochs[0][1]
    later_measured = [m for (_t, m, _a) in result.epochs[3:]]
    assert min(later_measured) < first_measured
    # ... and the analytic trajectory must have converged to W_c (Eq. 1).
    final_analytic = result.epochs[-1][2]
    assert abs(final_analytic - result.w_converged) < 0.1 * result.w_converged
