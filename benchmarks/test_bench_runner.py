"""Bench: the parallel, cached experiment runner itself.

Times one representative multi-cell sweep batch three ways -- executed
serially, executed with worker processes, and replayed from a warm disk
cache -- and archives the comparison.  The checks encode the runner's
two contracts:

* results are bit-identical across serial, parallel, and cached
  resolution (determinism is the whole point of cell-level seeding);
* a warm cache replays the batch at least 5x faster than executing it.
"""

import time

import pytest

from benchmarks.conftest import run_once
from repro.experiments.base import (
    DumbbellPlatform,
    plan_gain_sweep,
    run_gain_sweeps,
)
from repro.runner import ExperimentRunner
from repro.util.units import mbps, ms

GAMMAS = (0.3, 0.5, 0.7, 0.9)


def _plan():
    return plan_gain_sweep(
        DumbbellPlatform(n_flows=5, seed=42),
        rate_bps=mbps(30), extent=ms(100), gammas=GAMMAS,
        warmup=2.0, window=6.0, label="runner-bench",
    )


def _sweep_with(runner):
    started = time.perf_counter()
    curve = run_gain_sweeps([_plan()], runner=runner)[0]
    return curve, time.perf_counter() - started


def test_runner_parallel_and_cached(benchmark, record_result, tmp_path):
    serial, serial_wall = _sweep_with(ExperimentRunner(jobs=1))

    parallel, parallel_wall = run_once(
        benchmark, _sweep_with, ExperimentRunner(jobs=4)
    )

    warm = ExperimentRunner(jobs=1, cache_dir=tmp_path)
    _sweep_with(warm)  # populate the cache
    cached, cached_wall = _sweep_with(
        ExperimentRunner(jobs=1, cache_dir=tmp_path)
    )

    rows = [
        "Runner bench -- one 4-gamma sweep (5 flows, 8 s/cell) resolved "
        "three ways",
        f"{'mode':<12} {'wall':>8}",
        f"{'serial':<12} {serial_wall:>7.2f}s",
        f"{'jobs=4':<12} {parallel_wall:>7.2f}s",
        f"{'cached':<12} {cached_wall:>7.2f}s "
        f"({serial_wall / max(cached_wall, 1e-9):.0f}x)",
    ]
    record_result("runner", "\n".join(rows), data={
        "serial_wall": serial_wall, "parallel_wall": parallel_wall,
        "cached_wall": cached_wall,
        "cached_speedup": serial_wall / max(cached_wall, 1e-9),
    })

    for other in (parallel, cached):
        assert [p.measured_degradation for p in other.points] == [
            p.measured_degradation for p in serial.points
        ]
    assert serial_wall >= 5.0 * cached_wall
