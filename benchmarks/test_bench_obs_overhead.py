"""Bench: metrics-off overhead of the instrumented simulator core.

Replays the sim-core scenario three ways -- metrics registry disabled
(the default), metrics collecting, and flight recorder attached -- and
compares the disabled run's events/sec against the archived
``results/sim_core.txt`` trajectory.  The disabled path must stay
within 10% of the archived number (the same bar the sim-core
trajectory itself uses): observability must be free when nobody is
watching.  The recorder-attached run gates its own, same-process bar:
at most 5% over the disabled run in the cleanest time-matched rep
pair (see :func:`_interleaved_best`), and bit-identical results.

The enabled run doubles as an end-to-end telemetry check (engine, link,
and TCP families all populated, results bit-identical to the disabled
run) and writes a JSON-lines run log to ``results/runlog.jsonl`` plus a
small recorded experiment store to ``results/runlog.sqlite`` for CI to
smoke-query and upload as artifacts.

CI runs this bench non-gating (continue-on-error): the archived
baseline comes from whatever machine last regenerated it, so a slower
runner can fail the 10% bar without a real regression.  Regenerate
``sim_core.txt`` on the same machine for a meaningful comparison.
"""

import re
import time

import pytest

from benchmarks.conftest import RESULTS_DIR, format_reps, run_once
from benchmarks.test_bench_sim_core import (
    _build_scenario,
    _horizon,
    _run_sim_core,
    best_of,
)
from repro.obs import metrics

#: Disabled-metrics throughput must stay within this fraction of the
#: archived sim-core events/sec.  10% matches the sim-core trajectory
#: bar itself: single runs on a shared box swing that much between
#: regenerating the archive and replaying it (best-of-3 readings of
#: the identical scenario measured minutes apart span ~255-310k ev/s),
#: so a tighter bound gates machine weather, not code.  The
#: enabled-vs-disabled comparison below is same-process and stays far
#: tighter in practice.
TOLERANCE = 0.10

#: Recorder-attached capture may cost at most this fraction over the
#: disabled run in the cleanest interleaved rep pair.  Tighter than
#: the archived bar because the two sides alternate rep-for-rep in
#: one process and contention only ever adds time, so the quietest
#: pair bounds the true cost from above (see :func:`_interleaved_best`).
#: The recorder's per-arrival work is a single ``list.append`` of a
#: number-only tuple (no Python frame, no GC-tracked rows) with all
#: binning and fan-out deferred to harvest, which runs after the
#: timed window.
RECORDER_TOLERANCE = 0.05


def archived_events_per_sec() -> float:
    """The events/sec recorded in ``results/sim_core.txt``."""
    path = RESULTS_DIR / "sim_core.txt"
    if not path.is_file():
        pytest.skip("no archived sim_core.txt to compare against")
    match = re.search(r"events/sec\s*:\s*([\d.]+)", path.read_text())
    if match is None:
        pytest.skip("archived sim_core.txt has no events/sec line")
    return float(match.group(1))


def _run_instrumented():
    with metrics.collecting() as registry:
        stats = _run_sim_core()
    stats["snapshot"] = registry.snapshot()
    return stats


def _run_recorded():
    """The sim-core scenario with the flight recorder attached."""
    from repro.obs.recorder import FlightRecorder

    horizon = _horizon()
    net = _build_scenario(horizon)
    recorder = FlightRecorder()
    recorder.attach(net, horizon=horizon)
    started = time.perf_counter()
    net.run(until=horizon)
    wall = time.perf_counter() - started
    events = net.sim.events_executed
    return {
        "horizon": horizon,
        "events": events,
        "wall": wall,
        "events_per_sec": events / wall,
        "goodput_bytes": net.aggregate_goodput_bytes(),
        "series_rows": sum(s.n_rows for s in recorder.harvest()),
    }


def _interleaved_best(n: int = 7):
    """Best-of-*n* disabled and recorder-attached runs, alternating.

    The recorder gate is a same-process ratio, so its two sides must
    be *paired in time*: machine weather on a shared box drifts more
    than the gate's width over back-to-back best-of batches (rep walls
    measured minutes apart span ~15%), but alternating rep-for-rep
    puts both sides through the same weather.  Each pair's wall-time
    ratio goes into ``recorded["pair_ratios"]``; the gate takes the
    *minimum* -- contention only ever adds time, so the quietest
    matched window bounds the recorder's true cost from above.
    """
    disabled = recorded = None
    disabled_walls, recorded_walls = [], []
    for _ in range(n):
        stats = _run_sim_core()
        disabled_walls.append(stats["wall"])
        if disabled is None or stats["wall"] < disabled["wall"]:
            disabled = stats
        stats = _run_recorded()
        recorded_walls.append(stats["wall"])
        if recorded is None or stats["wall"] < recorded["wall"]:
            recorded = stats
    disabled = dict(disabled, rep_walls=disabled_walls)
    recorded = dict(recorded, rep_walls=recorded_walls)
    recorded["pair_ratios"] = [
        r / d for d, r in zip(disabled_walls, recorded_walls)]
    return disabled, recorded


def test_bench_obs_overhead(benchmark, record_result):
    baseline = archived_events_per_sec()

    metrics.disable()
    # Disabled and recorder-attached reps interleave (paired gate);
    # the metrics-enabled side is best-of-3, matching the archive.
    disabled, recorded = _interleaved_best()
    enabled = run_once(benchmark, lambda: best_of(fn=_run_instrumented))
    snapshot = enabled["snapshot"]

    # Instrumentation must not perturb the simulation.
    assert enabled["events"] == disabled["events"]
    assert enabled["goodput_bytes"] == disabled["goodput_bytes"]
    assert snapshot["engine.events_dispatched"] == enabled["events"]
    assert snapshot["link.bottleneck.accepted_packets"] > 0
    assert snapshot["tcp.goodput_bytes"] == enabled["goodput_bytes"]

    # Nor must the flight recorder -- bit-identical, but observed.
    assert recorded["events"] == disabled["events"]
    assert recorded["goodput_bytes"] == disabled["goodput_bytes"]
    assert recorded["series_rows"] > 0

    disabled_ratio = disabled["events_per_sec"] / baseline
    enabled_ratio = enabled["events_per_sec"] / disabled["events_per_sec"]
    recorded_ratio = recorded["events_per_sec"] / disabled["events_per_sec"]
    record_result("obs_overhead", (
        "obs-overhead microbenchmark (sim-core scenario, "
        f"{disabled['horizon']:.0f}s simulated)\n"
        f"archived events/sec : {baseline:.0f}\n"
        f"disabled events/sec : {disabled['events_per_sec']:.0f} "
        f"({100.0 * disabled_ratio:.1f}% of archived)\n"
        f"enabled events/sec  : {enabled['events_per_sec']:.0f} "
        f"({100.0 * enabled_ratio:.1f}% of disabled)\n"
        f"recorded events/sec : {recorded['events_per_sec']:.0f} "
        f"({100.0 * recorded_ratio:.1f}% of disabled, "
        f"{recorded['series_rows']} series rows)\n"
        f"recorder pair cost  : "
        f"{100 * (min(recorded['pair_ratios']) - 1):+.1f}% cleanest / "
        f"{100 * (sorted(recorded['pair_ratios'])[len(recorded['pair_ratios']) // 2] - 1):+.1f}% median\n"
        f"peak calendar depth : {snapshot['engine.peak_calendar_depth']:.0f}\n"
        f"disabled rep walls  : {format_reps(disabled['rep_walls'])}\n"
        f"enabled rep walls   : {format_reps(enabled['rep_walls'])}\n"
        f"recorded rep walls  : {format_reps(recorded['rep_walls'])}"
    ), data={
        "archived_events_per_sec": baseline,
        "disabled_events_per_sec": disabled["events_per_sec"],
        "enabled_events_per_sec": enabled["events_per_sec"],
        "recorded_events_per_sec": recorded["events_per_sec"],
        "disabled_ratio": disabled_ratio,
        "enabled_ratio": enabled_ratio,
        "recorded_ratio": recorded_ratio,
        "gate_tolerance": TOLERANCE,
        "recorder_gate_tolerance": RECORDER_TOLERANCE,
        "recorder_pair_ratios": recorded["pair_ratios"],
    })

    _write_run_log(disabled, enabled)
    _write_store()

    # The recorder gate is same-process and paired: in the quietest
    # matched window, attached capture may cost at most 5%.
    best_pair = min(recorded["pair_ratios"])
    assert best_pair <= 1.0 / (1.0 - RECORDER_TOLERANCE), (
        f"recorder-attached capture cost {100 * (best_pair - 1):.1f}% in "
        f"its cleanest matched pair (gate: "
        f"{100 * RECORDER_TOLERANCE:.0f}%; pair ratios "
        f"{[round(r, 3) for r in recorded['pair_ratios']]})"
    )

    # The gate: metrics off must cost nothing measurable.
    assert disabled["events_per_sec"] >= (1.0 - TOLERANCE) * baseline, (
        f"disabled-metrics throughput {disabled['events_per_sec']:.0f} ev/s "
        f"fell below {100 * (1 - TOLERANCE):.0f}% of archived "
        f"{baseline:.0f} ev/s"
    )


def _write_run_log(disabled, enabled) -> None:
    """One fresh JSON-lines record per variant, for the CI artifact."""
    from repro.obs.runlog import RunLogWriter, base_record

    path = RESULTS_DIR / "runlog.jsonl"
    path.unlink(missing_ok=True)
    writer = RunLogWriter(path)
    for variant, stats in (("disabled", disabled), ("enabled", enabled)):
        record = base_record("experiment", f"obs_overhead[{variant}]")
        record["elapsed_seconds"] = stats["wall"]
        record["metrics"] = stats.get("snapshot", {})
        record["events_per_sec"] = stats["events_per_sec"]
        writer.write(record)


def _write_store() -> None:
    """A small recorded experiment store, for the CI query/trace smoke.

    A real (tiny) gain sweep through the runner with series recording
    on: one baseline plus two attack gammas, so ``repro obs query
    gamma-star`` has a peak to report and ``repro obs trace`` has
    series to export.
    """
    from repro.core.attack import PulseTrain
    from repro.obs.runlog import git_sha
    from repro.obs.store import ExperimentStore
    from repro.runner import Cell, ExperimentRunner, PlatformSpec
    from repro.util.units import mbps, ms

    path = RESULTS_DIR / "runlog.sqlite"
    path.unlink(missing_ok=True)
    store = ExperimentStore(path)
    store.begin_run("bench", git_sha=git_sha())
    store.begin_experiment("obs_overhead")
    started = time.perf_counter()
    runner = ExperimentRunner(jobs=1)
    runner.attach_store(store, record_series=True)
    spec = PlatformSpec(kind="dumbbell", n_flows=5, seed=1)
    bottleneck = spec.to_config().bottleneck_rate_bps
    cells = [Cell(platform=spec, warmup=2.0, window=5.0)]
    for gamma in (0.4, 0.5):
        cells.append(Cell(
            platform=spec, warmup=2.0, window=5.0,
            train=PulseTrain.from_gamma(
                gamma=gamma, rate_bps=mbps(30), extent=ms(100),
                bottleneck_bps=bottleneck, n_pulses=40)))
    try:
        for cell in cells:
            runner.measure(cell)
    finally:
        runner.close()
    store.finish_experiment(elapsed_seconds=time.perf_counter() - started,
                            runner=runner.stats.snapshot())
    store.finish_run(elapsed_seconds=time.perf_counter() - started)
    store.close()
