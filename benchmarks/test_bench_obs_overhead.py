"""Bench: metrics-off overhead of the instrumented simulator core.

Replays the sim-core scenario twice -- once with the metrics registry
disabled (the default), once collecting -- and compares the disabled
run's events/sec against the archived ``results/sim_core.txt``
trajectory.  The disabled path must stay within 10% of the archived
number (the same bar the sim-core trajectory itself uses):
observability must be free when nobody is watching.

The enabled run doubles as an end-to-end telemetry check (engine, link,
and TCP families all populated, results bit-identical to the disabled
run) and writes a JSON-lines run log to ``results/runlog.jsonl`` for CI
to upload as an artifact.

CI runs this bench non-gating (continue-on-error): the archived
baseline comes from whatever machine last regenerated it, so a slower
runner can fail the 10% bar without a real regression.  Regenerate
``sim_core.txt`` on the same machine for a meaningful comparison.
"""

import re

import pytest

from benchmarks.conftest import RESULTS_DIR, format_reps, run_once
from benchmarks.test_bench_sim_core import _run_sim_core, best_of
from repro.obs import metrics

#: Disabled-metrics throughput must stay within this fraction of the
#: archived sim-core events/sec.  10% matches the sim-core trajectory
#: bar itself: single runs on a shared box swing that much between
#: regenerating the archive and replaying it (best-of-3 readings of
#: the identical scenario measured minutes apart span ~255-310k ev/s),
#: so a tighter bound gates machine weather, not code.  The
#: enabled-vs-disabled comparison below is same-process and stays far
#: tighter in practice.
TOLERANCE = 0.10


def archived_events_per_sec() -> float:
    """The events/sec recorded in ``results/sim_core.txt``."""
    path = RESULTS_DIR / "sim_core.txt"
    if not path.is_file():
        pytest.skip("no archived sim_core.txt to compare against")
    match = re.search(r"events/sec\s*:\s*([\d.]+)", path.read_text())
    if match is None:
        pytest.skip("archived sim_core.txt has no events/sec line")
    return float(match.group(1))


def _run_instrumented():
    with metrics.collecting() as registry:
        stats = _run_sim_core()
    stats["snapshot"] = registry.snapshot()
    return stats


def test_bench_obs_overhead(benchmark, record_result):
    baseline = archived_events_per_sec()

    metrics.disable()
    # Best-of-3 on both sides, matching how the archive is produced.
    disabled = best_of()
    enabled = run_once(benchmark, lambda: best_of(fn=_run_instrumented))
    snapshot = enabled["snapshot"]

    # Instrumentation must not perturb the simulation.
    assert enabled["events"] == disabled["events"]
    assert enabled["goodput_bytes"] == disabled["goodput_bytes"]
    assert snapshot["engine.events_dispatched"] == enabled["events"]
    assert snapshot["link.bottleneck.accepted_packets"] > 0
    assert snapshot["tcp.goodput_bytes"] == enabled["goodput_bytes"]

    disabled_ratio = disabled["events_per_sec"] / baseline
    enabled_ratio = enabled["events_per_sec"] / disabled["events_per_sec"]
    record_result("obs_overhead", (
        "obs-overhead microbenchmark (sim-core scenario, "
        f"{disabled['horizon']:.0f}s simulated)\n"
        f"archived events/sec : {baseline:.0f}\n"
        f"disabled events/sec : {disabled['events_per_sec']:.0f} "
        f"({100.0 * disabled_ratio:.1f}% of archived)\n"
        f"enabled events/sec  : {enabled['events_per_sec']:.0f} "
        f"({100.0 * enabled_ratio:.1f}% of disabled)\n"
        f"peak calendar depth : {snapshot['engine.peak_calendar_depth']:.0f}\n"
        f"disabled rep walls  : {format_reps(disabled['rep_walls'])}\n"
        f"enabled rep walls   : {format_reps(enabled['rep_walls'])}"
    ), data={
        "archived_events_per_sec": baseline,
        "disabled_events_per_sec": disabled["events_per_sec"],
        "enabled_events_per_sec": enabled["events_per_sec"],
        "disabled_ratio": disabled_ratio,
        "enabled_ratio": enabled_ratio,
        "gate_tolerance": TOLERANCE,
    })

    _write_run_log(disabled, enabled)

    # The gate: metrics off must cost nothing measurable.
    assert disabled["events_per_sec"] >= (1.0 - TOLERANCE) * baseline, (
        f"disabled-metrics throughput {disabled['events_per_sec']:.0f} ev/s "
        f"fell below {100 * (1 - TOLERANCE):.0f}% of archived "
        f"{baseline:.0f} ev/s"
    )


def _write_run_log(disabled, enabled) -> None:
    """One fresh JSON-lines record per variant, for the CI artifact."""
    from repro.obs.runlog import RunLogWriter, base_record

    path = RESULTS_DIR / "runlog.jsonl"
    path.unlink(missing_ok=True)
    writer = RunLogWriter(path)
    for variant, stats in (("disabled", disabled), ("enabled", enabled)):
        record = base_record("experiment", f"obs_overhead[{variant}]")
        record["elapsed_seconds"] = stats["wall"]
        record["metrics"] = stats.get("snapshot", {})
        record["events_per_sec"] = stats["events_per_sec"]
        writer.write(record)
