"""Shared benchmark plumbing.

Every bench regenerates one of the paper's figures (or an extension
experiment), times the run with pytest-benchmark, prints the rows/series
the paper plots, and archives them under ``benchmarks/results/`` so the
numbers survive the run.

Scale: benches default to the scaled-down sweeps (shorter measurement
windows, fewer γ samples, a subset of flow-count panels) so the whole
suite finishes in minutes.  Set ``REPRO_FULL=1`` for paper-scale runs.
"""

import json
import pathlib
import time

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def best_of_reps(n, fn, *args, wall_of=None, **kwargs):
    """Fastest of *n* runs of ``fn(*args, **kwargs)``.

    Single runs jitter ~5-10% on shared boxes, so the trajectory
    archives (and the gates that read them) compare minima, which
    track machine capability.  Returns ``(result, best_wall,
    rep_walls)`` where ``rep_walls`` holds every rep's wall time so
    archived results can show the spread, and ``result`` is the return
    value of the fastest rep.

    *wall_of* extracts the wall time from ``fn``'s return value, for
    functions that time themselves (excluding their own setup);
    without it each call is timed externally.
    """
    results, walls = [], []
    for _ in range(n):
        started = time.perf_counter()
        result = fn(*args, **kwargs)
        elapsed = time.perf_counter() - started
        results.append(result)
        walls.append(elapsed if wall_of is None else wall_of(result))
    index = min(range(n), key=walls.__getitem__)
    return results[index], walls[index], tuple(walls)


def format_reps(rep_walls) -> str:
    """Render per-rep wall times for an archived result line."""
    return "reps: " + " / ".join(f"{wall:.2f}s" for wall in rep_walls)


@pytest.fixture(autouse=True)
def fresh_runner():
    """A fresh default ExperimentRunner per bench.

    Installing a new runner isolates each bench's in-process memo (so
    one bench cannot serve another's cells and skew its timing) while
    still honouring ``REPRO_JOBS`` / ``REPRO_CACHE_DIR`` from the
    environment.  Yields the runner so benches can report cache stats.
    """
    import os

    from repro.runner import ExperimentRunner, set_default_runner

    runner = ExperimentRunner(
        jobs=int(os.environ.get("REPRO_JOBS", "1") or 1),
        cache_dir=os.environ.get("REPRO_CACHE_DIR") or None,
    )
    previous = set_default_runner(runner)
    yield runner
    set_default_runner(previous)


@pytest.fixture
def record_result():
    """Print a rendered experiment and archive it under results/.

    Every call writes the human rendering to ``results/<name>.txt``
    *and* a machine-readable ``results/<name>.json`` sibling, so the
    perf trajectory is diffable across PRs without parsing the text.
    The JSON always carries the bench name and rendering; benches with
    structured numbers (events/sec, wall, speedup, gate) merge them in
    via *data*.
    """

    def _record(name: str, text: str, data=None) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        record = {"bench": name, "rendered": text}
        if data is not None:
            record.update(data)
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps(record, indent=2, sort_keys=True, default=str) + "\n")
        print(f"\n{text}\n"
              f"[archived to benchmarks/results/{name}.txt + {name}.json]")

    return _record


def run_once(benchmark, fn, *args, **kwargs):
    """Time *fn* exactly once (simulation benches are minutes-scale)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
