"""Bench: fluid pre-pass vs the adaptive planner alone.

The ``--fast`` path now runs a fluid (ODE) localization sweep before
any packet cell: a two-stage sampling of a 17-point fluid γ grid
(about a dozen cells, integrated at the pre-pass's coarse step) costs
a few hundred milliseconds and pins γ* to one grid point, so the
packet-level work shrinks from a 5-point coarse grid plus refinement
rounds to :attr:`PlannerPolicy.fluid_confirm_points` confirmation
cells around the fluid peak.

Both sides of this bench resolve the same three-extent Fig.-6 panel
(R_attack = 25 Mb/s, 15 flows) through :func:`run_planned_sweep`:

* **planner** -- ``FAST_POLICY`` with the pre-pass disabled (the
  previous fast path: coarse grid, refinement, CI seeds, early exit);
* **prepass** -- ``FAST_POLICY`` as shipped, fluid pre-pass included.

Gates (the ISSUE's acceptance bar): the pre-pass resolves the panel
>= 2x faster, and each γ* lands within one coarse-grid step of the
planner-alone answer.  Results are archived to
``benchmarks/results/fluid_prepass.txt``.
"""

import dataclasses
import time

from benchmarks.conftest import best_of_reps, format_reps, run_once
from repro.experiments.base import DumbbellPlatform
from repro.runner import ExperimentRunner
from repro.runner.planner import FAST_POLICY, run_planned_sweep
from repro.util.units import mbps, ms

RATE = mbps(25)
EXTENTS = (ms(50), ms(75), ms(100))
N_FLOWS = 15
SEED = 42
WARMUP = 6.0
WINDOW = 20.0

#: One coarse-grid step of the planner-alone policy.
COARSE_STEP = (0.9 - 0.1) / (FAST_POLICY.coarse_points - 1)

SPEEDUP_GATE = 2.0

PLANNER_ONLY = dataclasses.replace(FAST_POLICY, fluid_prepass=False)


def _run_panel(policy):
    runner = ExperimentRunner(jobs=1, cache_dir=None)
    platform = DumbbellPlatform(n_flows=N_FLOWS, seed=SEED)
    started = time.perf_counter()
    sweeps = [
        run_planned_sweep(
            platform, rate_bps=RATE, extent=extent,
            warmup=WARMUP, window=WINDOW,
            label=f"T_extent={extent * 1e3:.0f}ms [fast]",
            policy=policy, runner=runner,
        )
        for extent in EXTENTS
    ]
    return sweeps, time.perf_counter() - started, runner


def test_bench_fluid_prepass(benchmark, record_result):
    alone, alone_wall, alone_runner = _run_panel(PLANNER_ONLY)
    (prepass, prepass_wall, prepass_runner), _, rep_walls = run_once(
        benchmark, best_of_reps, 1, _run_panel, FAST_POLICY,
        wall_of=lambda run: run[1])

    speedup = alone_wall / max(prepass_wall, 1e-9)
    stats = prepass_runner.stats
    rows = [
        "Fluid pre-pass bench -- three-extent Fig. 6 panel "
        f"(R_attack={RATE / 1e6:.0f}M, {N_FLOWS} flows, "
        f"{WARMUP:.0f}s warm-up / {WINDOW:.0f}s window), jobs=1",
        "planner: FAST_POLICY without the fluid pre-pass; "
        "prepass: FAST_POLICY as shipped",
        f"{'mode':<8} {'wall':>8} {'packet cells':>13} {'fluid cells':>12}",
        f"{'planner':<8} {alone_wall:>7.2f}s "
        f"{alone_runner.stats.executed:>13} {alone_runner.stats.fluid_cells:>12}",
        f"{'prepass':<8} {prepass_wall:>7.2f}s "
        f"{stats.executed - stats.fluid_cells:>13} {stats.fluid_cells:>12}"
        f"   ({speedup:.2f}x)  ({format_reps(rep_walls)})",
        "",
        f"{'extent':<8} {'planner g*':>11} {'prepass g*':>11} "
        f"{'fluid g*':>9}",
    ]
    for extent, a, p in zip(EXTENTS, alone, prepass):
        rows.append(
            f"{extent * 1e3:>5.0f}ms  {a.gamma_star:>11.3f} "
            f"{p.gamma_star:>11.3f} {p.fluid_gamma_star:>9.3f}"
        )
    rows.append("")
    rows.extend(sweep.summary() for sweep in prepass)
    rows.append(f"prepass runner: {stats.summary()}")
    rows.append(f"planner runner: {alone_runner.stats.summary()}")
    record_result("fluid_prepass", "\n".join(rows), data={
        "planner_wall": alone_wall, "prepass_wall": prepass_wall,
        "speedup": speedup, "rep_walls": rep_walls,
        "fluid_cells": stats.fluid_cells,
    })

    # The pre-pass actually ran: fluid cells counted, packet work
    # shrank.  (The floor is each panel's stage-1 coarse half-grid;
    # the extent-independent fluid baseline is memoized after the
    # first panel, and memo hits are not re-counted.)
    assert (stats.fluid_cells
            >= len(EXTENTS) * (FAST_POLICY.fluid_grid_points // 2 + 1))
    assert (stats.executed - stats.fluid_cells
            < alone_runner.stats.executed)
    for sweep in prepass:
        assert sweep.fluid_gamma_star is not None

    for extent, a, p in zip(EXTENTS, alone, prepass):
        assert abs(p.gamma_star - a.gamma_star) <= COARSE_STEP + 1e-9, (
            f"extent {extent * 1e3:.0f}ms: prepass gamma*="
            f"{p.gamma_star:.3f} is more than one coarse step "
            f"({COARSE_STEP:.2f}) from the planner-alone answer "
            f"{a.gamma_star:.3f}"
        )

    assert speedup >= SPEEDUP_GATE, (
        f"fluid pre-pass speedup {speedup:.2f}x below the "
        f"{SPEEDUP_GATE}x gate (planner {alone_wall:.2f}s, "
        f"prepass {prepass_wall:.2f}s)"
    )
